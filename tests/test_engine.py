"""Integration tests for the IM-GRN query engine (Fig. 4 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaselineEngine,
    EngineConfig,
    GeneFeatureDatabase,
    IMGRNEngine,
    LinearScanEngine,
)
from repro.core.inference import EdgeProbabilityEstimator
from repro.data.matrix import GeneFeatureMatrix
from repro.errors import IndexNotBuiltError, ValidationError

from conftest import TEST_CONFIG


def brute_force_answers(database, estimator, query_graph, gamma, alpha):
    """Definition-4 ground truth: test every matrix directly."""
    answers = []
    query_edges = [key for key, _p in query_graph.edges()]
    for matrix in database:
        if any(g not in matrix for g in query_graph.gene_ids):
            continue
        probability = 1.0
        ok = True
        for u, v in query_edges:
            p = estimator.pair_probability(matrix.column(u), matrix.column(v))
            if p <= gamma:
                ok = False
                break
            probability *= p
        if ok and probability > alpha:
            answers.append(matrix.source_id)
    return sorted(answers)


class TestBuild:
    def test_build_registers_all_points(self, built_engine, small_database):
        assert len(built_engine.tree) == small_database.total_genes()
        assert built_engine.is_built
        assert built_engine.build_seconds > 0.0

    def test_tree_invariants(self, built_engine):
        built_engine.tree.check_invariants()

    def test_inverted_file_complete(self, built_engine, small_database):
        for matrix in small_database:
            for gene in matrix.gene_ids:
                assert matrix.source_id in built_engine.inverted_file.sources_of(gene)

    def test_query_before_build_raises(self, small_database, query_workload):
        engine = IMGRNEngine(small_database, TEST_CONFIG)
        with pytest.raises(IndexNotBuiltError):
            engine.query(query_workload[0], gamma=0.5, alpha=0.5)

    def test_empty_database_rejected(self):
        with pytest.raises(Exception):
            IMGRNEngine(GeneFeatureDatabase())


class TestCorrectness:
    """The headline guarantee: index + pruning lose no true answers."""

    @pytest.mark.parametrize(
        "gamma,alpha", [(0.5, 0.5), (0.3, 0.2), (0.8, 0.5), (0.5, 0.0)]
    )
    def test_matches_brute_force(
        self, built_engine, small_database, query_workload, gamma, alpha
    ):
        estimator = EdgeProbabilityEstimator(
            n_samples=TEST_CONFIG.mc_samples, seed=TEST_CONFIG.seed
        )
        for query in query_workload:
            result = built_engine.query(query, gamma=gamma, alpha=alpha)
            expected = brute_force_answers(
                small_database, estimator, result.query_graph, gamma, alpha
            )
            assert result.answer_sources() == expected, (
                f"query from source {query.source_id} at "
                f"gamma={gamma}, alpha={alpha}"
            )

    def test_self_source_matches_at_permissive_thresholds(
        self, built_engine, query_workload
    ):
        """With alpha=0 the query's own source must always answer (the
        query columns ARE that matrix's columns)."""
        for query in query_workload:
            result = built_engine.query(query, gamma=0.5, alpha=0.0)
            assert query.source_id in result.answer_sources()

    def test_answer_probabilities_exceed_alpha(self, built_engine, query_workload):
        result = built_engine.query(query_workload[0], gamma=0.5, alpha=0.2)
        for answer in result.answers:
            assert answer.probability > 0.2

    def test_deterministic_across_runs(self, small_database, query_workload):
        a = IMGRNEngine(small_database, TEST_CONFIG)
        a.build()
        b = IMGRNEngine(small_database, TEST_CONFIG)
        b.build()
        for query in query_workload:
            ra = a.query(query, gamma=0.5, alpha=0.5)
            rb = b.query(query, gamma=0.5, alpha=0.5)
            assert ra.answer_sources() == rb.answer_sources()
            assert ra.stats.candidates == rb.stats.candidates


class TestEngineAgreement:
    """IM-GRN, Baseline and LinearScan return identical answer sets."""

    @pytest.fixture(scope="class")
    def engines(self, small_database):
        engine = IMGRNEngine(small_database, TEST_CONFIG)
        engine.build()
        baseline = BaselineEngine(small_database, TEST_CONFIG)
        baseline.build()
        scan = LinearScanEngine(small_database, TEST_CONFIG)
        scan.build()
        return engine, baseline, scan

    @pytest.mark.parametrize("gamma,alpha", [(0.5, 0.5), (0.8, 0.3), (0.2, 0.1)])
    def test_answers_agree(self, engines, query_workload, gamma, alpha):
        engine, baseline, scan = engines
        for query in query_workload:
            a = engine.query(query, gamma=gamma, alpha=alpha).answer_sources()
            b = baseline.query(query, gamma=gamma, alpha=alpha).answer_sources()
            c = scan.query(query, gamma=gamma, alpha=alpha).answer_sources()
            assert a == b == c

    def test_baseline_storage_model(self, engines, small_database):
        _engine, baseline, _scan = engines
        expected_pairs = sum(
            m.num_genes * (m.num_genes - 1) // 2 for m in small_database
        )
        assert baseline.storage_bytes == expected_pairs * 8

    def test_baseline_io_dominates_engine_io(self, engines, query_workload):
        """The core efficiency claim at the I/O level (Fig. 6(b) shape):
        Baseline reads every matrix's full probability triangle."""
        engine, baseline, _scan = engines
        engine_io = []
        baseline_io = []
        for query in query_workload:
            engine_io.append(engine.query(query, gamma=0.5, alpha=0.5).stats.io_accesses)
            baseline_io.append(baseline.query(query, gamma=0.5, alpha=0.5).stats.io_accesses)
        # Baseline I/O is constant = N pages minimum (one per matrix here).
        assert min(baseline_io) >= len(list(engine.database))

    def test_query_before_build(self, small_database, query_workload):
        with pytest.raises(IndexNotBuiltError):
            BaselineEngine(small_database, TEST_CONFIG).query(
                query_workload[0], gamma=0.5, alpha=0.5)
        with pytest.raises(IndexNotBuiltError):
            LinearScanEngine(small_database, TEST_CONFIG).query(
                query_workload[0], gamma=0.5, alpha=0.5)


class TestQueryGraphInference:
    def test_engine_query_graph_edges_exceed_gamma(
        self, built_engine, query_workload
    ):
        graph = built_engine.infer_query_graph(query_workload[0], 0.5)
        for _key, p in graph.edges():
            assert p > 0.5

    def test_edge_free_query_falls_back_to_containment(
        self, built_engine, small_database, rng
    ):
        """A query whose genes never co-vary infers no edges; the answer
        set is then every matrix containing all query genes."""
        matrix = list(small_database)[0]
        genes = list(matrix.gene_ids[:2])
        # Replace values with fresh independent noise -> p ~ 0.5 per pair,
        # gamma=0.95 kills all edges.
        query = GeneFeatureMatrix(
            rng.normal(size=(matrix.num_samples, 2)), genes, matrix.source_id
        )
        result = built_engine.query(query, gamma=0.95, alpha=0.0)
        expected = sorted(
            m.source_id
            for m in small_database
            if all(g in m for g in genes)
        )
        assert result.answer_sources() == expected

    def test_gamma_domain(self, built_engine, query_workload):
        with pytest.raises(ValidationError):
            built_engine.query(query_workload[0], gamma=1.0, alpha=0.5)
        with pytest.raises(ValidationError):
            built_engine.query(query_workload[0], gamma=0.5, alpha=1.0)


class TestStats:
    def test_stats_populated(self, built_engine, query_workload):
        result = built_engine.query(query_workload[0], gamma=0.5, alpha=0.5)
        stats = result.stats
        assert stats.cpu_seconds > 0.0
        assert stats.refine_seconds > 0.0
        assert stats.inference_seconds > 0.0
        assert stats.io_accesses >= 1  # at least the root page
        assert stats.candidates >= 0
        assert stats.answers == len(result.answers)

    def test_topk_stats_populated(self, built_engine, query_workload):
        """query_topk must fill the same counters as query (bugfix audit)."""
        stats = built_engine.query_topk(query_workload[0], gamma=0.5, k=2).stats
        assert stats.cpu_seconds > 0.0
        assert stats.refine_seconds > 0.0
        assert stats.inference_seconds > 0.0
        assert stats.io_accesses >= 1

    def test_gamma_monotone_candidates(self, built_engine, query_workload):
        """Higher gamma can only shrink the candidate set (Fig. 7(c))."""
        for query in query_workload:
            low = built_engine.query(query, gamma=0.2, alpha=0.5)
            high = built_engine.query(query, gamma=0.9, alpha=0.5)
            # The query graph itself changes with gamma, so compare only
            # when the high-gamma query graph still has edges.
            if high.query_graph.num_edges > 0:
                assert high.stats.candidates <= max(low.stats.candidates, 1)

    def test_io_reset_between_queries(self, built_engine, query_workload):
        first = built_engine.query(query_workload[0], gamma=0.5, alpha=0.5).stats.io_accesses
        second = built_engine.query(query_workload[0], gamma=0.5, alpha=0.5).stats.io_accesses
        assert first == second


class TestPivotPadding:
    def test_matrix_with_fewer_genes_than_pivots(self, rng):
        """n_i < d matrices pad pivots; the engine must stay correct."""
        tiny = GeneFeatureMatrix(rng.normal(size=(8, 2)), [0, 1], 0)
        wide = GeneFeatureMatrix(rng.normal(size=(8, 6)), [0, 1, 2, 3, 4, 5], 1)
        db = GeneFeatureDatabase([tiny, wide])
        engine = IMGRNEngine(db, EngineConfig(num_pivots=4, mc_samples=64, seed=1))
        engine.build()
        assert engine.tree.dim == 9
        query = wide.submatrix([0, 1])
        result = engine.query(query, gamma=0.2, alpha=0.0)
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=1)
        expected = brute_force_answers(
            db, estimator, result.query_graph, 0.2, 0.0
        )
        assert result.answer_sources() == expected
