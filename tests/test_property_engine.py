"""Property-based end-to-end test: the engine equals brute force.

Hypothesis drives the whole stack: random tiny databases (random shapes,
random gene overlaps), random query cut-outs and random thresholds — the
indexed engine's answer set must always equal a direct evaluation of
Definition 4 over every matrix. This is the single strongest guarantee in
the suite: it exercises inference, embedding, pivot selection, the R*-tree,
bit vectors, all four pruning lemmas and refinement together.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, GeneFeatureDatabase, GeneFeatureMatrix, IMGRNEngine
from repro.core.inference import EdgeProbabilityEstimator

CONFIG = EngineConfig(mc_samples=32, seed=3)
ESTIMATOR = EdgeProbabilityEstimator(n_samples=32, seed=3)


@st.composite
def database_and_query(draw):
    """A random small database plus a query cut from one of its matrices."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_matrices = draw(st.integers(2, 6))
    gene_pool = draw(st.integers(8, 20))
    matrices = []
    for source_id in range(n_matrices):
        n_genes = int(rng.integers(4, min(10, gene_pool) + 1))
        n_samples = int(rng.integers(6, 14))
        gene_ids = sorted(
            int(g) for g in rng.choice(gene_pool, size=n_genes, replace=False)
        )
        values = rng.normal(size=(n_samples, n_genes))
        # Inject some co-expression so edges exist.
        for _ in range(n_genes // 2):
            a, b = rng.choice(n_genes, size=2, replace=False)
            values[:, b] = 0.7 * values[:, a] + 0.4 * rng.normal(size=n_samples)
        matrices.append(GeneFeatureMatrix(values, gene_ids, source_id))
    database = GeneFeatureDatabase(matrices)
    query_source = matrices[int(rng.integers(n_matrices))]
    n_q = int(rng.integers(2, min(4, query_source.num_genes) + 1))
    query_genes = sorted(
        int(g)
        for g in rng.choice(query_source.gene_ids, size=n_q, replace=False)
    )
    query = query_source.submatrix(query_genes)
    gamma = draw(st.sampled_from([0.2, 0.5, 0.8]))
    alpha = draw(st.sampled_from([0.0, 0.3, 0.6]))
    return database, query, gamma, alpha


def brute_force(database, query_graph, gamma, alpha):
    answers = []
    query_edges = [key for key, _p in query_graph.edges()]
    for matrix in database:
        if any(g not in matrix for g in query_graph.gene_ids):
            continue
        probability = 1.0
        ok = True
        for u, v in query_edges:
            p = ESTIMATOR.pair_probability(matrix.column(u), matrix.column(v))
            if p <= gamma:
                ok = False
                break
            probability *= p
        if ok and probability > alpha:
            answers.append(matrix.source_id)
    return sorted(answers)


@given(database_and_query())
@settings(max_examples=20, deadline=None)
def test_engine_equals_brute_force(case):
    database, query, gamma, alpha = case
    engine = IMGRNEngine(database, CONFIG)
    engine.build()
    result = engine.query(query, gamma=gamma, alpha=alpha)
    assert result.answer_sources() == brute_force(
        database, result.query_graph, gamma, alpha
    )
    engine.tree.check_invariants()


@given(database_and_query())
@settings(max_examples=10, deadline=None)
def test_remove_then_query_consistency(case):
    """After removing a random source the engine still equals brute force
    over the remaining matrices."""
    database, query, gamma, alpha = case
    engine = IMGRNEngine(database, CONFIG)
    engine.build()
    victim = database.source_ids[0]
    engine.remove_matrix(victim)
    result = engine.query(query, gamma=gamma, alpha=alpha)
    remaining = GeneFeatureDatabase(
        m for m in database if m.source_id != victim
    )
    assert result.answer_sources() == brute_force(
        remaining, result.query_graph, gamma, alpha
    )
