"""Tests for engine save/load (prototype-system persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IMGRNEngine
from repro.core.persistence import load_engine, save_engine
from repro.errors import IndexNotBuiltError, ValidationError

from conftest import TEST_CONFIG


class TestSaveLoad:
    def test_roundtrip_answers_identical(
        self, built_engine, query_workload, tmp_path
    ):
        path = tmp_path / "engine.npz"
        save_engine(built_engine, path)
        loaded = load_engine(path)
        for query in query_workload:
            original = built_engine.query(query, gamma=0.5, alpha=0.2)
            restored = loaded.query(query, gamma=0.5, alpha=0.2)
            assert restored.answer_sources() == original.answer_sources()
            assert restored.stats.candidates == original.stats.candidates

    def test_roundtrip_preserves_embeddings(self, built_engine, tmp_path):
        path = tmp_path / "engine.npz"
        save_engine(built_engine, path)
        loaded = load_engine(path)
        for source_id, entry in built_engine._entries.items():
            restored = loaded._entries[source_id].embedded
            np.testing.assert_array_equal(restored.x, entry.embedded.x)
            np.testing.assert_array_equal(restored.y, entry.embedded.y)
            assert restored.pivot_indices == entry.embedded.pivot_indices

    def test_roundtrip_preserves_config_and_database(
        self, built_engine, tmp_path
    ):
        path = tmp_path / "engine.npz"
        save_engine(built_engine, path)
        loaded = load_engine(path)
        assert loaded.config == built_engine.config
        assert loaded.database.source_ids == built_engine.database.source_ids
        loaded.tree.check_invariants()

    def test_loaded_engine_supports_updates(
        self, built_engine, tmp_path, query_workload
    ):
        from repro.config import SyntheticConfig
        from repro.data.synthetic import generate_matrix

        path = tmp_path / "engine.npz"
        save_engine(built_engine, path)
        loaded = load_engine(path)
        new_matrix = generate_matrix(
            SyntheticConfig(
                genes_range=(10, 14), samples_range=(8, 12), gene_pool=50, seed=5
            ),
            source_id=600,
            rng=np.random.default_rng(5),
        )
        loaded.add_matrix(new_matrix)
        query = new_matrix.submatrix(list(new_matrix.gene_ids[:3]))
        assert 600 in loaded.query(query, gamma=0.5, alpha=0.0).answer_sources()

    def test_save_unbuilt_rejected(self, small_database, tmp_path):
        engine = IMGRNEngine(small_database, TEST_CONFIG)
        with pytest.raises(IndexNotBuiltError):
            save_engine(engine, tmp_path / "x.npz")

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValidationError):
            load_engine(path)


def _rewrite_meta(path, mutate):
    """Load an engine archive, apply ``mutate`` to its meta dict, re-save."""
    import json

    with np.load(path) as archive:
        payload = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(payload["meta"]).decode("utf-8"))
    mutate(meta)
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


class TestConfigCompatibility:
    """Archives from older/newer versions load with config defaults."""

    def test_config_from_dict_tolerates_unknown_and_missing(self):
        from repro.config import EngineConfig
        from repro.core.persistence import _config_from_dict

        config = _config_from_dict(
            {
                "num_pivots": 4,
                "from_the_future": True,
                "inference": {"cache_size": 99, "also_new": 1},
            }
        )
        assert config.num_pivots == 4
        assert config.inference.cache_size == 99
        # everything absent from the dict falls back to the defaults
        defaults = EngineConfig()
        assert config.bitvector_bits == defaults.bitvector_bits
        assert config.observability == defaults.observability

    def test_archive_missing_observability_loads(
        self, built_engine, query_workload, tmp_path
    ):
        path = tmp_path / "old.npz"
        save_engine(built_engine, path)

        def mutate(meta):
            del meta["config"]["observability"]
            meta["config"]["future_knob"] = 123

        _rewrite_meta(path, mutate)
        loaded = load_engine(path)
        assert loaded.config.observability == built_engine.config.observability
        original = built_engine.query(query_workload[0], gamma=0.5, alpha=0.2)
        restored = loaded.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert restored.answer_sources() == original.answer_sources()
