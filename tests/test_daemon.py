"""Network serving daemon: admission, drain, reload, bit-identity.

End-to-end tests run a real :class:`repro.serve.QueryDaemon` on an
ephemeral port (in-thread via :func:`repro.serve.serve_in_background`,
or as a subprocess for the SIGTERM path) and talk to it through
:class:`repro.serve.DaemonClient`. The acceptance gates of the daemon
PR live here: process-backend answers bit-identical to the in-process
:class:`~repro.serve.QueryServer`, shedding at the queue bound,
per-client rate limiting, graceful drain finishing in-flight work, and
hot reload swapping fingerprints without dropping admitted requests.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import (
    DaemonClient,
    DaemonConfig,
    EngineConfig,
    IMGRNResult,
    QueryDaemon,
    QueryServer,
    QuerySpec,
    ServeConfig,
    SyntheticConfig,
    ValidationError,
    generate_database,
    save_engine_sharded,
    serve_in_background,
)
from repro.core.query import IMGRNEngine
from repro.eval.counters import QueryStats
from repro.obs import names as _names
from repro.serve.daemon import _TokenBucketLimiter

COUNT_FIELDS = ("io_accesses", "candidates", "answers", "pruned_pairs")


class _SlowEngine:
    """Stub engine whose queries sleep; keeps workers busy on demand."""

    is_built = True

    def __init__(self, sleep_seconds: float = 0.0):
        self.sleep_seconds = sleep_seconds
        self.calls = 0
        self._lock = threading.Lock()

    def query(self, matrix, *, gamma, alpha) -> IMGRNResult:
        with self._lock:
            self.calls += 1
        if self.sleep_seconds:
            time.sleep(self.sleep_seconds)
        return IMGRNResult(None, [], QueryStats(answers=0))

    def execute(self, spec: QuerySpec) -> IMGRNResult:
        return self.query(spec.matrix, gamma=spec.gamma, alpha=spec.alpha)


@pytest.fixture(scope="module")
def sharded_dir(built_engine, tmp_path_factory) -> Path:
    """The session engine, persisted as a sharded save."""
    directory = tmp_path_factory.mktemp("daemon_save")
    save_engine_sharded(built_engine, directory)
    return directory


def _serve(daemon: QueryDaemon):
    return serve_in_background(daemon)


# ----------------------------------------------------------------------
# Construction / config
# ----------------------------------------------------------------------
class TestConstruction:
    def test_requires_exactly_one_source(self, sharded_dir):
        with pytest.raises(ValidationError):
            QueryDaemon()
        with pytest.raises(ValidationError):
            QueryDaemon(index_dir=sharded_dir, engine=_SlowEngine())

    def test_engine_forces_thread_backend(self):
        daemon = QueryDaemon(
            engine=_SlowEngine(), config=DaemonConfig(backend="process")
        )
        assert daemon.config.backend == "thread"

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            DaemonConfig(workers=0)
        with pytest.raises(ValidationError):
            DaemonConfig(backend="coroutine")
        with pytest.raises(ValidationError):
            DaemonConfig(queue_size=0)
        with pytest.raises(ValidationError):
            DaemonConfig(rate_limit_qps=-1.0)
        with pytest.raises(ValidationError):
            DaemonConfig(timeout_seconds=0.0)
        with pytest.raises(ValidationError):
            DaemonConfig(port=70000)
        assert DaemonConfig(timeout_seconds=None).timeout_seconds is None


class TestTokenBucket:
    def test_burst_then_refill(self):
        limiter = _TokenBucketLimiter(qps=1.0, burst=2)
        assert limiter.allow("a", now=0.0)
        assert limiter.allow("a", now=0.0)
        assert not limiter.allow("a", now=0.0)  # burst exhausted
        assert limiter.allow("a", now=1.0)  # one token refilled
        assert not limiter.allow("a", now=1.0)

    def test_clients_are_independent(self):
        limiter = _TokenBucketLimiter(qps=1.0, burst=1)
        assert limiter.allow("a", now=0.0)
        assert limiter.allow("b", now=0.0)
        assert not limiter.allow("a", now=0.0)

    def test_disabled_when_qps_zero(self):
        limiter = _TokenBucketLimiter(qps=0.0, burst=1)
        assert all(limiter.allow("a", now=0.0) for _ in range(100))


# ----------------------------------------------------------------------
# Bit-identity: network daemon vs in-process QueryServer
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_process_backend_matches_query_server(
        self, built_engine: IMGRNEngine, sharded_dir, query_workload
    ):
        """Forked mmap workers answer exactly like the in-process server."""
        specs = [
            QuerySpec(matrix, gamma, 0.2)
            for matrix in query_workload
            for gamma in (0.3, 0.6)
        ]
        with QueryServer(
            built_engine, ServeConfig(max_workers=2, cache=False)
        ) as server:
            reference = server.batch(specs)

        daemon = QueryDaemon(
            index_dir=sharded_dir,
            config=DaemonConfig(workers=2, backend="process"),
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                for spec, ref in zip(specs, reference):
                    out = client.query(
                        spec.matrix, gamma=spec.gamma, alpha=spec.alpha
                    )
                    assert out["status"] == "ok", out
                    assert out["sources"] == ref.result.answer_sources()
                    got_probs = [a["probability"] for a in out["answers"]]
                    ref_probs = [a.probability for a in ref.result.answers]
                    assert got_probs == ref_probs  # bit-identical floats
                    for field_name in COUNT_FIELDS:
                        assert out["stats"][field_name] == getattr(
                            ref.result.stats, field_name
                        ), field_name
            finally:
                client.close()

    def test_all_kinds_roundtrip_bit_identical(
        self, built_engine: IMGRNEngine, sharded_dir, query_workload
    ):
        """Each workload kind through the wire == in-process execute()."""
        matrix = query_workload[0]
        specs = [
            QuerySpec(matrix, 0.5, 0.2),
            QuerySpec(matrix, 0.5, kind="topk", k=3),
            QuerySpec(matrix, 0.5, 0.2, kind="similarity", edge_budget=1),
        ]
        reference = [built_engine.execute(spec) for spec in specs]
        daemon = QueryDaemon(
            index_dir=sharded_dir,
            config=DaemonConfig(workers=2, backend="process"),
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                for spec, ref in zip(specs, reference):
                    out = client.query(
                        spec.matrix,
                        gamma=spec.gamma,
                        alpha=spec.alpha,
                        kind=spec.kind,
                        k=spec.k,
                        edge_budget=spec.edge_budget,
                    )
                    assert out["status"] == "ok", out
                    assert out["schema"] == 2
                    assert out["kind"] == spec.kind
                    assert out["sources"] == ref.answer_sources()
                    got = [
                        (a["source_id"], a["probability"])
                        for a in out["answers"]
                    ]
                    assert got == [
                        (a.source_id, a.probability) for a in ref.answers
                    ]
            finally:
                client.close()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_shed_under_queue_pressure(self):
        """Queue bound reached -> immediate structured shed, not a hang."""
        engine = _SlowEngine(sleep_seconds=0.4)
        daemon = QueryDaemon(
            engine=engine,
            config=DaemonConfig(
                backend="thread", workers=1, queue_size=1, timeout_seconds=None
            ),
        )
        from repro.data.synthetic import generate_matrix

        matrix = generate_matrix(SyntheticConfig(seed=3), source_id=0, rng=3)
        statuses: list[str] = []
        lock = threading.Lock()

        def fire():
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                out = client.query(matrix, gamma=0.5, alpha=0.5)
                with lock:
                    statuses.append(out["status"])
            finally:
                client.close()

        with _serve(daemon) as handle:
            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
        assert len(statuses) == 6
        assert set(statuses) <= {"ok", "shed"}
        assert statuses.count("shed") >= 1  # load shedding engaged
        assert statuses.count("ok") >= 1  # admitted work still finished
        snapshot = daemon.obs.metrics.snapshot()
        shed_key = f'{_names.SERVE_SHED}{{reason="queue_full"}}'
        assert snapshot[shed_key] == statuses.count("shed")

    def test_rate_limit_rejection(self):
        """Per-client token bucket: burst passes, the rest bounce with 429."""
        daemon = QueryDaemon(
            engine=_SlowEngine(),
            config=DaemonConfig(
                backend="thread",
                workers=1,
                rate_limit_qps=0.001,  # effectively no refill mid-test
                rate_limit_burst=2,
            ),
        )
        from repro.data.synthetic import generate_matrix

        matrix = generate_matrix(SyntheticConfig(seed=3), source_id=0, rng=3)
        with _serve(daemon) as handle:
            client = DaemonClient(
                "127.0.0.1", handle.port, client_id="tester"
            )
            try:
                statuses = [
                    client.query(matrix, gamma=0.5, alpha=0.5)["status"]
                    for _ in range(5)
                ]
                # A different client identity has its own bucket.
                other = DaemonClient(
                    "127.0.0.1", handle.port, client_id="someone-else"
                )
                try:
                    fresh = other.query(matrix, gamma=0.5, alpha=0.5)
                finally:
                    other.close()
            finally:
                client.close()
        assert statuses == ["ok", "ok"] + ["rate_limited"] * 3
        assert fresh["status"] == "ok"
        snapshot = daemon.obs.metrics.snapshot()
        assert snapshot[f'{_names.SERVE_SHED}{{reason="rate_limit"}}'] == 3.0

    def test_bad_requests_rejected(self, sharded_dir):
        daemon = QueryDaemon(
            index_dir=sharded_dir,
            config=DaemonConfig(backend="thread", workers=1),
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                code, payload = client._request(
                    "POST", "/query", {"gamma": 0.5}
                )
                assert code == 400
                assert payload["status"] == "error"
                assert "missing field" in payload["error"]
                code, payload = client._request(
                    "POST",
                    "/query",
                    {
                        "values": [[1.0]],
                        "gene_ids": [0],
                        "gamma": 1.5,  # out of [0, 1)
                        "alpha": 0.5,
                    },
                )
                assert code == 400
                code, payload = client._request(
                    "POST",
                    "/query",
                    {
                        "values": [[1.0]],
                        "gene_ids": [0],
                        "gamma": 0.5,
                        "kind": "regex",  # unknown workload kind
                    },
                )
                assert code == 400
                assert "kind" in payload["error"]
                code, payload = client._request(
                    "POST",
                    "/query",
                    {
                        "values": [[1.0]],
                        "gene_ids": [0],
                        "gamma": 0.5,
                        "kind": "topk",  # k is required for topk
                    },
                )
                assert code == 400
                assert "missing field 'k'" in payload["error"]
                code, _payload = client._request("GET", "/nope")
                assert code == 404
                code, _payload = client._request("GET", "/query")
                assert code == 405
            finally:
                client.close()


# ----------------------------------------------------------------------
# Lifecycle: drain and reload
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_drain_completes_inflight_queries(self):
        """Shutdown mid-query: the admitted query still gets its answer."""
        engine = _SlowEngine(sleep_seconds=0.5)
        daemon = QueryDaemon(
            engine=engine,
            config=DaemonConfig(
                backend="thread", workers=1, timeout_seconds=None,
                drain_seconds=10.0,
            ),
        )
        from repro.data.synthetic import generate_matrix

        matrix = generate_matrix(SyntheticConfig(seed=3), source_id=0, rng=3)
        outcome: dict = {}

        def fire():
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                outcome.update(client.query(matrix, gamma=0.5, alpha=0.5))
            finally:
                client.close()

        handle = _serve(daemon)
        worker = threading.Thread(target=fire)
        worker.start()
        deadline = time.time() + 5.0
        while engine.calls == 0 and time.time() < deadline:
            time.sleep(0.01)  # wait until the query is in flight
        handle.stop()  # graceful drain, joins the serving thread
        worker.join(timeout=10.0)
        assert outcome.get("status") == "ok"

    def test_hot_reload_swaps_fingerprint(self, tmp_path):
        """Republish -> /reload serves the new index, old one retired."""
        config = EngineConfig(mc_samples=32, seed=5)
        db_a = generate_database(
            SyntheticConfig(genes_range=(8, 10), seed=21), 8
        )
        db_b = generate_database(
            SyntheticConfig(genes_range=(8, 10), seed=22), 8
        )
        engine_a = IMGRNEngine(db_a, config)
        engine_a.build()
        engine_b = IMGRNEngine(db_b, config)
        engine_b.build()
        save_dir = tmp_path / "published"
        save_engine_sharded(engine_a, save_dir)

        from repro.data.queries import generate_query_workload

        query_a = generate_query_workload(db_a, n_q=3, count=1, rng=4)[0]
        query_b = generate_query_workload(db_b, n_q=3, count=1, rng=4)[0]
        ref_a = engine_a.query(query_a, gamma=0.3, alpha=0.3)
        ref_b = engine_b.query(query_b, gamma=0.3, alpha=0.3)

        daemon = QueryDaemon(
            index_dir=save_dir,
            config=DaemonConfig(workers=1, backend="process"),
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                first_fp = client.health()["fingerprint"]
                out = client.query(query_a, gamma=0.3, alpha=0.3)
                assert out["sources"] == ref_a.answer_sources()

                unchanged = client.reload()
                assert unchanged["status"] == "unchanged"

                save_engine_sharded(engine_b, save_dir)  # republish
                reloaded = client.reload()
                assert reloaded["status"] == "reloaded"
                assert reloaded["fingerprint"] != first_fp
                assert client.health()["fingerprint"] == (
                    reloaded["fingerprint"]
                )

                out = client.query(query_b, gamma=0.3, alpha=0.3)
                assert out["status"] == "ok"
                assert out["sources"] == ref_b.answer_sources()
            finally:
                client.close()

    def test_reload_unsupported_for_in_memory_engine(self):
        daemon = QueryDaemon(
            engine=_SlowEngine(), config=DaemonConfig(workers=1)
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                assert client.reload()["status"] == "unsupported"
            finally:
                client.close()

    def test_sigterm_drains_cleanly(self, sharded_dir, query_workload):
        """`imgrn serve` under SIGTERM: in-flight work finishes, exit 0."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main())",
                "serve",
                str(sharded_dir),
                "--backend",
                "process",
                "--daemon-workers",
                "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split("listening on ")[1].split()[0].split(":")[1])
            client = DaemonClient("127.0.0.1", port, timeout=60.0)
            try:
                out = client.query(query_workload[0], gamma=0.4, alpha=0.3)
                assert out["status"] == "ok"
            finally:
                client.close()
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "drained cleanly" in stdout


# ----------------------------------------------------------------------
# Observability endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_metrics_stats_and_health(self, sharded_dir, query_workload):
        daemon = QueryDaemon(
            index_dir=sharded_dir,
            config=DaemonConfig(backend="thread", workers=1),
        )
        with _serve(daemon) as handle:
            client = DaemonClient("127.0.0.1", handle.port)
            try:
                for matrix in query_workload[:3]:
                    assert (
                        client.query(matrix, gamma=0.4, alpha=0.3)["status"]
                        == "ok"
                    )
                health = client.health()
                assert health["status"] == "serving"
                assert health["fingerprint"] == daemon.fingerprint
                stats = client.stats()
                assert stats["requests"]["ok"] == 3.0
                latency = stats["latency_seconds"]
                assert latency["count"] == 3
                assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"]
                text = client.metrics_text()
                assert "imgrn_serve_queries_total" in text
                assert "imgrn_serve_request_seconds_bucket" in text
            finally:
                client.close()
