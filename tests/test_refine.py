"""Refinement-layer conformance: the batched `CandidateRefiner` is
bit-identical to the per-pair reference strategy and to brute-force
`find_embeddings` over materialized GRNs, across all three workload
kinds, `edge_budget in {0, 1, 2}` and all four engines -- answers,
probabilities and `query.*` pruning counters alike."""

from __future__ import annotations

import pytest

from repro import (
    BaselineEngine,
    EngineConfig,
    IMGRNEngine,
    LinearScanEngine,
    MeasureScanEngine,
    ObservabilityConfig,
    QuerySpec,
    RefineConfig,
)
from repro.core.matching import find_embeddings
from repro.core.probgraph import ProbabilisticGraph, edge_key
from repro.core.query import _PAYLOAD_GENE_LIMIT
from repro.errors import ValidationError

GAMMA, ALPHA = 0.5, 0.3

#: Private registries keep these tests independent of suite ordering.
BASE_CONFIG = EngineConfig(
    mc_samples=64,
    seed=11,
    observability=ObservabilityConfig(shared_registry=False),
)

ENGINE_NAMES = ["imgrn", "baseline", "linear_scan", "measure_scan"]

#: (kind, edge_budget) coverage: every kind, budgets 0..2 for similarity.
WORKLOADS = [
    ("containment", None),
    ("topk", None),
    ("similarity", 0),
    ("similarity", 1),
    ("similarity", 2),
]


def _make_engine(name: str, database, config: EngineConfig):
    if name == "imgrn":
        return IMGRNEngine(database, config)
    if name == "baseline":
        return BaselineEngine(database, config)
    if name == "linear_scan":
        return LinearScanEngine(database, config)
    return MeasureScanEngine(database, config=config)


def _spec(query, kind: str, budget: int | None) -> QuerySpec:
    if kind == "containment":
        return QuerySpec(query, GAMMA, ALPHA)
    if kind == "topk":
        return QuerySpec(query, GAMMA, kind="topk", k=3)
    return QuerySpec(
        query, GAMMA, ALPHA, kind="similarity", edge_budget=budget
    )


def _answers(result) -> list[tuple[int, float]]:
    return [(a.source_id, a.probability) for a in result.answers]


def _query_counters(result) -> dict[str, float]:
    """The ``query.*`` counters (not timings): the bit-identity surface."""
    return {
        key: value
        for key, value in result.metrics.items()
        if key.startswith("query.") and "seconds" not in key
    }


def _pair_probability_fn(engine):
    inference = getattr(engine, "_inference", None)
    if inference is not None:
        return inference.pair_probability
    return engine._pair_probability


def _brute_force(engine, database, query_graph, kind, budget):
    """Reference: materialize each source's GRN restricted to the query
    genes with the engine's own estimator, then run ``find_embeddings``.

    ``_exact_label_embeddings`` multiplies data-edge probabilities in the
    same sorted query-edge order as the engines' refinement replay, so
    the comparison is bit-exact, not approximate.
    """
    pair_probability = _pair_probability_fn(engine)
    alpha = 0.0 if kind == "topk" else ALPHA
    edge_budget = budget or 0
    answers: list[tuple[int, float]] = []
    for matrix in database:
        if any(g not in matrix for g in query_graph.gene_ids):
            continue
        edges: dict[tuple[int, int], float] = {}
        for (u, v), _qp in query_graph.edges():
            p = pair_probability(matrix.column(u), matrix.column(v))
            if p > GAMMA:
                edges[edge_key(u, v)] = p
        grn = ProbabilisticGraph(query_graph.gene_ids, edges)
        found = find_embeddings(
            query_graph, grn, alpha=alpha, edge_budget=edge_budget
        )
        if found:
            answers.append((matrix.source_id, found[0].probability))
    if kind == "topk":
        answers.sort(key=lambda sp: (-sp[1], sp[0]))
        del answers[3:]
    return answers


@pytest.fixture(scope="module")
def strategy_engines(small_database):
    """Per engine name: one built engine per refine strategy."""
    built = {}
    for name in ENGINE_NAMES:
        pair = {}
        for strategy in ("batched", "perpair"):
            engine = _make_engine(
                name,
                small_database,
                BASE_CONFIG.with_(refine=RefineConfig(strategy=strategy)),
            )
            engine.build()
            pair[strategy] = engine
        built[name] = pair
    return built


@pytest.mark.parametrize("name", ENGINE_NAMES)
@pytest.mark.parametrize(
    "kind,budget", WORKLOADS, ids=lambda value: str(value)
)
class TestRefinementConformance:
    def test_batched_bit_identical_to_perpair(
        self, strategy_engines, query_workload, name, kind, budget
    ):
        """Same answers, same probabilities, same query.* counters."""
        batched = strategy_engines[name]["batched"]
        perpair = strategy_engines[name]["perpair"]
        for query in query_workload[:2]:
            got = batched.execute(_spec(query, kind, budget))
            reference = perpair.execute(_spec(query, kind, budget))
            assert _answers(got) == _answers(reference)
            assert _query_counters(got) == _query_counters(reference)

    def test_batched_bit_identical_to_brute_force(
        self, strategy_engines, small_database, query_workload, name, kind, budget
    ):
        """Property: refinement == find_embeddings over materialized GRNs."""
        engine = strategy_engines[name]["batched"]
        for query in query_workload[:2]:
            result = engine.execute(_spec(query, kind, budget))
            expected = _brute_force(
                engine, small_database, result.query_graph, kind, budget
            )
            assert _answers(result) == expected


class TestStrategyKnobs:
    @pytest.mark.parametrize(
        "refine",
        [
            RefineConfig(strategy="batched", prescreen=False, chunk_size=0),
            RefineConfig(strategy="batched", prescreen=True, chunk_size=0),
            RefineConfig(strategy="batched", prescreen=False, chunk_size=1),
            RefineConfig(strategy="batched", prescreen=True, chunk_size=1),
            RefineConfig(strategy="batched", prescreen=True, chunk_size=2),
        ],
        ids=lambda c: f"prescreen={c.prescreen},chunk={c.chunk_size}",
    )
    def test_knobs_never_change_answers(
        self, small_database, query_workload, strategy_engines, refine
    ):
        """Chunking/prescreen settings are pure strategy: answers and
        query.* counters stay bit-identical to the per-pair reference."""
        engine = IMGRNEngine(small_database, BASE_CONFIG.with_(refine=refine))
        engine.build()
        reference_engine = strategy_engines["imgrn"]["perpair"]
        for query in query_workload[:2]:
            for kind, budget in WORKLOADS:
                got = engine.execute(_spec(query, kind, budget))
                reference = reference_engine.execute(_spec(query, kind, budget))
                assert _answers(got) == _answers(reference)
                assert _query_counters(got) == _query_counters(reference)

    def test_refine_metrics_recorded(self, strategy_engines, query_workload):
        """refine.* diagnostics carry engine+strategy labels per query."""
        engine = strategy_engines["imgrn"]["batched"]
        result = engine.execute(QuerySpec(query_workload[0], GAMMA, ALPHA))
        labels = 'engine="imgrn",strategy="batched"'
        sources = result.metrics.get(f"refine.sources{{{labels}}}", 0.0)
        assert sources >= len(result.answers)
        if sources:
            evaluated = result.metrics.get(
                f"refine.edges_evaluated{{{labels}}}", 0.0
            )
            batches = result.metrics.get(f"refine.batches{{{labels}}}", 0.0)
            prescreened = result.metrics.get(
                f"refine.prescreened{{{labels}}}", 0.0
            )
            # Every refined candidate was either estimated or discarded
            # by bounds alone.
            assert evaluated + prescreened > 0.0
            if evaluated:
                assert batches >= 1.0


class TestRefineConfigValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValidationError, match="strategy"):
            RefineConfig(strategy="bogus")

    def test_negative_chunk_size(self):
        with pytest.raises(ValidationError, match="chunk_size"):
            RefineConfig(chunk_size=-1)

    def test_with_copies(self):
        config = RefineConfig().with_(strategy="perpair")
        assert config.strategy == "perpair"
        assert RefineConfig().strategy == "batched"


class TestPayloadKeyValidation:
    """The packed R*-tree payload key must refuse aliasing inputs."""

    def test_packing_is_pinned(self):
        assert _PAYLOAD_GENE_LIMIT == 1_000_000
        assert IMGRNEngine._payload_key(2, 5) == 2 * _PAYLOAD_GENE_LIMIT + 5

    def test_negative_source_rejected(self):
        with pytest.raises(ValidationError, match="source_id"):
            IMGRNEngine._payload_key(-1, 0)

    def test_gene_index_at_limit_rejected(self):
        """One past the last packable column would alias source+1's
        column 0: (s, LIMIT) and (s+1, 0) pack to the same integer."""
        assert IMGRNEngine._payload_key(
            0, _PAYLOAD_GENE_LIMIT - 1
        ) == _PAYLOAD_GENE_LIMIT - 1
        with pytest.raises(ValidationError, match="genes per"):
            IMGRNEngine._payload_key(0, _PAYLOAD_GENE_LIMIT)
        with pytest.raises(ValidationError, match="gene index"):
            IMGRNEngine._payload_key(0, -1)
