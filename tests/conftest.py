"""Shared fixtures: small deterministic databases, engines and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaselineEngine,
    EngineConfig,
    GeneFeatureDatabase,
    GeneFeatureMatrix,
    IMGRNEngine,
)
from repro.config import SyntheticConfig
from repro.data.queries import generate_query_workload
from repro.data.synthetic import generate_database

#: One engine configuration shared by the integration tests (small MC count
#: keeps the suite fast; determinism comes from the content-keyed streams).
TEST_CONFIG = EngineConfig(mc_samples=64, seed=11)


@pytest.fixture(scope="session")
def small_database() -> GeneFeatureDatabase:
    """A 24-matrix synthetic database with overlapping gene sets."""
    config = SyntheticConfig(
        genes_range=(10, 16),
        samples_range=(8, 14),
        gene_pool=50,
        seed=11,
    )
    return generate_database(config, 24)


@pytest.fixture(scope="session")
def built_engine(small_database: GeneFeatureDatabase) -> IMGRNEngine:
    """The indexed engine over ``small_database`` (built once per session)."""
    engine = IMGRNEngine(small_database, TEST_CONFIG)
    engine.build()
    return engine


@pytest.fixture(scope="session")
def baseline_engine(small_database: GeneFeatureDatabase) -> BaselineEngine:
    """The exhaustive reference engine over ``small_database``."""
    engine = BaselineEngine(small_database, TEST_CONFIG)
    engine.build()
    return engine


@pytest.fixture(scope="session")
def query_workload(small_database: GeneFeatureDatabase) -> list[GeneFeatureMatrix]:
    """Five connected 3-gene queries cut from ``small_database``."""
    return generate_query_workload(
        small_database, n_q=3, count=5, rng=11, threshold=0.5
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(2024)
