"""Unit tests of the observability layer (`repro.obs`).

Covers span nesting/attributes, the no-op fast path and its overhead
budget, the metrics registry (get-or-create, labels, histograms,
mark/since deltas), and all three exporters -- with a golden test
pinning the Prometheus text format.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ValidationError
from repro.obs import (
    DEFAULT_BUCKETS,
    NOOP_SPAN,
    NOOP_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    chrome_trace,
    metric_key,
    metrics_to_json,
    metrics_to_prometheus,
    parse_key,
    registry_from_json,
    write_chrome_trace,
)
from repro.obs import names


class TestSpans:
    def test_nesting_depth_and_timing(self):
        tracer = Tracer()
        with tracer.span("outer", engine="imgrn"):
            time.sleep(0.001)
            with tracer.span("inner") as inner:
                inner.set(candidates=3)
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.wall_seconds >= 0.001
        assert outer.attrs == {"engine": "imgrn"}
        assert inner.attrs == {"candidates": 3}

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer.spans) == 1
        assert not tracer._stack

    def test_capacity_drops_and_reset(self):
        tracer = Tracer(capacity=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2 and tracer.dropped == 2
        tracer.reset()
        assert tracer.spans == [] and tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            Tracer(capacity=0)

    def test_noop_tracer_records_nothing(self):
        span = NOOP_TRACER.span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as entered:
            assert entered.set(more=2) is span
        assert NOOP_TRACER.chrome_trace_events() == []
        assert not NOOP_TRACER.enabled


class TestMetricsRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("c", engine="imgrn")
        b = registry.counter("c", engine="imgrn")
        assert a is b
        a.inc()
        b.inc(2.5)
        assert a.value == 3.5

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("c").inc(-1)

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("c", engine="imgrn").inc()
        registry.counter("c", engine="baseline").inc(5)
        snap = registry.snapshot()
        assert snap['c{engine="imgrn"}'] == 1
        assert snap['c{engine="baseline"}'] == 5

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValidationError):
            registry.gauge("x")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter('bad{name"')

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert registry.snapshot()["g"] == 7.0

    def test_histogram_buckets_and_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0), stage="refine")
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.cumulative_counts() == [1, 2, 3]
        snap = registry.snapshot()
        assert snap['h{stage="refine"}_sum'] == pytest.approx(5.55)
        assert snap['h{stage="refine"}_count'] == 3

    def test_bad_histogram_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.histogram("h", buckets=(1.0, 0.5))

    def test_mark_since_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", stage="x")
        counter.inc(10)
        gauge.set(100)
        hist.observe(1.0)
        mark = registry.mark()
        counter.inc(5)
        gauge.set(42)
        hist.observe(2.0)
        delta = registry.since(mark)
        assert delta["c"] == 5.0
        assert delta["g"] == 42.0  # gauges report current value, not delta
        assert delta['h{stage="x"}_sum'] == pytest.approx(2.0)
        assert delta['h{stage="x"}_count'] == 1.0

    def test_metric_key_round_trip(self):
        key = metric_key("q.s", {"stage": "refine", "engine": "imgrn"}, "_sum")
        assert key == 'q.s{engine="imgrn",stage="refine"}_sum'
        name, labels, suffix = parse_key(key)
        assert name == "q.s"
        assert labels == 'engine="imgrn",stage="refine"'
        assert suffix == "_sum"
        assert parse_key("plain") == ("plain", "", "")

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestExporters:
    @staticmethod
    def _sample_registry() -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("query.io_accesses", help="pages read", engine="imgrn").inc(5)
        registry.gauge("cache.entries", help="entries").set(2)
        hist = registry.histogram(
            "query.stage_seconds",
            help="stage seconds",
            buckets=(0.1, 1.0),
            engine="imgrn",
            stage="refine",
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        return registry

    def test_prometheus_golden(self):
        text = metrics_to_prometheus(self._sample_registry())
        assert text == (
            "# HELP imgrn_cache_entries entries\n"
            "# TYPE imgrn_cache_entries gauge\n"
            "imgrn_cache_entries 2\n"
            "# HELP imgrn_query_io_accesses_total pages read\n"
            "# TYPE imgrn_query_io_accesses_total counter\n"
            'imgrn_query_io_accesses_total{engine="imgrn"} 5\n'
            "# HELP imgrn_query_stage_seconds stage seconds\n"
            "# TYPE imgrn_query_stage_seconds histogram\n"
            'imgrn_query_stage_seconds_bucket{engine="imgrn",stage="refine",le="0.1"} 1\n'
            'imgrn_query_stage_seconds_bucket{engine="imgrn",stage="refine",le="1"} 2\n'
            'imgrn_query_stage_seconds_bucket{engine="imgrn",stage="refine",le="+Inf"} 3\n'
            'imgrn_query_stage_seconds_sum{engine="imgrn",stage="refine"} 5.55\n'
            'imgrn_query_stage_seconds_count{engine="imgrn",stage="refine"} 3\n'
        )

    def test_json_round_trip(self):
        registry = self._sample_registry()
        restored = registry_from_json(metrics_to_json(registry))
        assert restored.snapshot() == registry.snapshot()
        assert metrics_to_prometheus(restored) == metrics_to_prometheus(registry)

    def test_registry_from_json_rejects_garbage(self):
        with pytest.raises(ValidationError):
            registry_from_json("[1, 2, 3]")
        with pytest.raises(ValidationError):
            registry_from_json('{"version": 1, "metrics": [{"name": "x", "type": "nope"}]}')

    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query", engine="imgrn", gamma=0.5):
            with tracer.span("query.refine"):
                pass
        document = chrome_trace(tracer)
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["query", "query.refine"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        assert events[0]["args"]["engine"] == "imgrn"
        assert events[1]["args"]["depth"] == 1
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert reloaded["otherData"]["dropped_spans"] == 0
        assert len(reloaded["traceEvents"]) == 2


class TestObservabilityBundle:
    def test_disabled_bundle_is_noop(self):
        obs = Observability.disabled()
        assert obs.tracer is NOOP_TRACER
        assert isinstance(obs.metrics, MetricsRegistry)

    def test_names_are_valid_metric_names(self):
        registry = MetricsRegistry()
        for constant in names.__all__:
            value = getattr(names, constant)
            if constant.startswith("STAGE_") and constant != "STAGE_SECONDS":
                continue  # label values, not metric names
            registry.counter(value + ".probe")  # must not raise

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


@pytest.mark.microbench
def test_noop_tracer_overhead():
    """Instrumenting a span site with the no-op tracer costs < 5 %.

    The engine span sites wrap non-trivial chunks of work; here the
    per-entry cost of a no-op span is compared against a deliberately
    *small* representative chunk. Best-of-repeats on both sides keeps
    the comparison stable under scheduler noise.
    """
    import timeit

    span_seconds = min(
        timeit.repeat(
            "\nwith tracer.span('hot'):\n    pass\n",
            globals={"tracer": NOOP_TRACER},
            repeat=5,
            number=50_000,
        )
    ) / 50_000
    work_seconds = min(
        timeit.repeat("sum(range(3000))", repeat=5, number=2_000)
    ) / 2_000
    overhead = span_seconds / work_seconds
    assert overhead < 0.05, (
        f"no-op span costs {span_seconds * 1e9:.0f} ns = {overhead:.1%} of a "
        f"{work_seconds * 1e6:.0f} us work chunk (budget: 5%)"
    )
