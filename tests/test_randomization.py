"""Unit tests for permutation sampling, Lemma 2 and expected distances."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.randomization import (
    MAX_EXACT_LENGTH,
    content_seed,
    default_rng,
    enumerate_permutation_distances,
    expected_randomized_distance_jensen,
    expected_randomized_distance_mc,
    expected_squared_randomized_distance,
    lemma2_sample_size,
    sample_permutation_distances,
)
from repro.core.standardize import standardize_vector
from repro.errors import ValidationError


class TestLemma2:
    def test_formula(self):
        # S >= 3/eps^2 * ln(2/delta)
        assert lemma2_sample_size(0.1, 0.05) == math.ceil(
            3.0 / 0.01 * math.log(2.0 / 0.05)
        )

    def test_monotone_in_epsilon(self):
        assert lemma2_sample_size(0.05, 0.1) > lemma2_sample_size(0.2, 0.1)

    def test_monotone_in_delta(self):
        assert lemma2_sample_size(0.1, 0.01) > lemma2_sample_size(0.1, 0.2)

    @pytest.mark.parametrize(
        "eps,delta", [(0.0, 0.1), (1.0, 0.1), (0.1, 0.0), (0.1, 1.0)]
    )
    def test_domain(self, eps, delta):
        with pytest.raises(ValidationError):
            lemma2_sample_size(eps, delta)


class TestDefaultRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(5)
        assert default_rng(gen) is gen

    def test_seed_coercion_is_deterministic(self):
        assert default_rng(5).integers(1 << 30) == default_rng(5).integers(1 << 30)


class TestContentSeed:
    def test_deterministic(self, rng):
        x = rng.normal(size=12)
        assert content_seed(x) == content_seed(x.copy())

    def test_differs_for_different_vectors(self, rng):
        x = rng.normal(size=12)
        assert content_seed(x) != content_seed(x + 1e-9)

    def test_accepts_non_contiguous(self, rng):
        m = rng.normal(size=(6, 4))
        col = m[:, 2]
        assert content_seed(col) == content_seed(np.ascontiguousarray(col))


class TestSamplePermutationDistances:
    def test_shape_and_non_negative(self, rng):
        x, y = rng.normal(size=(2, 10))
        d = sample_permutation_distances(x, y, 50, rng)
        assert d.shape == (50,)
        assert np.all(d >= 0.0)

    def test_samples_within_exact_population(self, rng):
        x = standardize_vector(rng.normal(size=5))
        y = standardize_vector(rng.normal(size=5))
        population = set(np.round(enumerate_permutation_distances(x, y), 9))
        sampled = np.round(sample_permutation_distances(x, y, 200, rng), 9)
        assert set(sampled) <= population

    def test_norm_preserved_by_permutation(self, rng):
        # dist^2 = ||x||^2 + ||y||^2 - 2 dot ; permutation keeps ||y||.
        x = np.zeros(8)
        y = rng.normal(size=8)
        d = sample_permutation_distances(x, y, 30, rng)
        np.testing.assert_allclose(d, np.linalg.norm(y), atol=1e-9)

    def test_invalid_sample_count(self, rng):
        with pytest.raises(ValidationError):
            sample_permutation_distances(np.zeros(4), np.ones(4), 0, rng)


class TestEnumeratePermutationDistances:
    def test_count_is_factorial(self, rng):
        x, y = rng.normal(size=(2, 5))
        assert enumerate_permutation_distances(x, y).shape == (math.factorial(5),)

    def test_length_cap(self, rng):
        x, y = rng.normal(size=(2, MAX_EXACT_LENGTH + 1))
        with pytest.raises(ValidationError):
            enumerate_permutation_distances(x, y)

    def test_identity_permutation_included(self, rng):
        x, y = rng.normal(size=(2, 4))
        observed = float(np.linalg.norm(x - y))
        all_d = enumerate_permutation_distances(x, y)
        assert np.any(np.isclose(all_d, observed))


class TestExpectedDistances:
    def test_closed_form_squared_expectation_matches_enumeration(self, rng):
        x = rng.normal(size=6)
        pivot = rng.normal(size=6)
        exact = float(np.mean(enumerate_permutation_distances(pivot, x) ** 2))
        assert expected_squared_randomized_distance(x, pivot) == pytest.approx(
            exact, rel=1e-9
        )

    def test_jensen_upper_bounds_exact_expectation(self, rng):
        for _ in range(10):
            x = rng.normal(size=6)
            pivot = rng.normal(size=6)
            exact_mean = float(np.mean(enumerate_permutation_distances(pivot, x)))
            assert expected_randomized_distance_jensen(x, pivot) >= exact_mean - 1e-12

    def test_jensen_is_sqrt_2l_for_standardized(self, rng):
        x = standardize_vector(rng.normal(size=20))
        pivot = standardize_vector(rng.normal(size=20))
        assert expected_randomized_distance_jensen(x, pivot) == pytest.approx(
            math.sqrt(40.0)
        )

    def test_mc_estimate_close_to_exact(self, rng):
        x = rng.normal(size=6)
        pivot = rng.normal(size=6)
        exact_mean = float(np.mean(enumerate_permutation_distances(pivot, x)))
        mc = expected_randomized_distance_mc(x, pivot, n_samples=4000, rng=rng)
        assert mc == pytest.approx(exact_mean, rel=0.05)

    def test_mc_below_or_near_jensen(self, rng):
        x, pivot = rng.normal(size=(2, 15))
        mc = expected_randomized_distance_mc(x, pivot, n_samples=500, rng=rng)
        assert mc <= expected_randomized_distance_jensen(x, pivot) * 1.02
