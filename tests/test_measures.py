"""Unit tests for the generalized randomized measures (future-work module)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import edge_probability_correlation
from repro.core.measures import (
    MEASURES,
    randomized_measure_matrix,
    randomized_measure_probability,
    score_absolute_pearson,
    score_fisher_z,
    score_mutual_information,
    score_t_statistic,
)
from repro.errors import ValidationError


class TestScores:
    def test_pearson_score_range(self, rng):
        x, y = rng.normal(size=(2, 20))
        assert 0.0 <= score_absolute_pearson(x, y) <= 1.0

    def test_fisher_and_t_monotone_in_abs_r(self, rng):
        """Fisher z and |t| are strictly monotone transforms of |r|."""
        x = rng.normal(size=40)
        pairs = [x + noise * rng.normal(size=40) for noise in (0.1, 0.5, 2.0)]
        rs = [score_absolute_pearson(x, y) for y in pairs]
        zs = [score_fisher_z(x, y) for y in pairs]
        ts = [score_t_statistic(x, y) for y in pairs]
        assert sorted(rs, reverse=True) == rs
        assert sorted(zs, reverse=True) == zs
        assert sorted(ts, reverse=True) == ts

    def test_mi_non_negative_and_symmetric_under_shuffle_mean(self, rng):
        x, y = rng.normal(size=(2, 60))
        assert score_mutual_information(x, y) >= 0.0

    def test_mi_detects_linear_dependence(self, rng):
        x = rng.normal(size=200)
        y = x + 0.1 * rng.normal(size=200)
        z = rng.normal(size=200)
        assert score_mutual_information(x, y) > score_mutual_information(x, z) + 0.2

    def test_mi_detects_nonlinear_dependence(self, rng):
        """The headline advantage over correlation: y = x^2 dependence."""
        x = rng.normal(size=400)
        y = x * x + 0.05 * rng.normal(size=400)
        assert abs(score_absolute_pearson(x, y)) < 0.35  # correlation blind-ish
        z = rng.normal(size=400)
        assert score_mutual_information(x, y) > score_mutual_information(x, z) + 0.2

    def test_mi_invariant_to_monotone_transform(self, rng):
        x = rng.normal(size=150)
        y = x + 0.3 * rng.normal(size=150)
        direct = score_mutual_information(x, y)
        transformed = score_mutual_information(np.exp(x), y)
        assert direct == pytest.approx(transformed, abs=1e-9)

    def test_mi_domain(self, rng):
        with pytest.raises(ValidationError):
            score_mutual_information(np.ones(3), np.ones(3))
        with pytest.raises(ValidationError):
            score_mutual_information(np.ones(10), np.ones(10), bins=1)

    def test_t_needs_three_samples(self):
        with pytest.raises(ValidationError):
            score_t_statistic(np.array([1.0, 2.0]), np.array([2.0, 1.0]))


class TestRandomizedProbability:
    def test_in_unit_interval(self, rng):
        x, y = rng.normal(size=(2, 15))
        for name in MEASURES:
            p = randomized_measure_probability(x, y, name, n_samples=60, rng=rng)
            assert 0.0 <= p <= 1.0, name

    def test_high_for_dependent_pair_all_measures(self, rng):
        x = rng.normal(size=40)
        y = x + 0.1 * rng.normal(size=40)
        for name in MEASURES:
            p = randomized_measure_probability(x, y, name, n_samples=150, rng=rng)
            assert p > 0.9, name

    def test_mi_measure_finds_nonlinear_edge(self, rng):
        """The generalized measure's reason to exist: a quadratic
        interaction is an edge under randomized MI but not under the
        Pearson measure."""
        x = rng.normal(size=120)
        y = x * x + 0.05 * rng.normal(size=120)
        p_mi = randomized_measure_probability(
            x, y, "mutual_information", n_samples=150, rng=np.random.default_rng(1)
        )
        assert p_mi > 0.95

    def test_pearson_measure_matches_eq1_estimator(self, rng):
        """The generic wrapper with the Pearson score IS Eq. 1."""
        x, y = rng.normal(size=(2, 18))
        generic = randomized_measure_probability(
            x, y, "pearson", n_samples=2000, rng=np.random.default_rng(3)
        )
        direct = edge_probability_correlation(
            x, y, n_samples=2000, rng=np.random.default_rng(4)
        )
        assert generic == pytest.approx(direct, abs=0.05)

    def test_custom_callable_score(self, rng):
        x, y = rng.normal(size=(2, 12))
        p = randomized_measure_probability(
            x, y, score=lambda a, b: -float(np.linalg.norm(a - b)),
            n_samples=60, rng=rng,
        )
        assert 0.0 <= p <= 1.0

    def test_unknown_measure_rejected(self, rng):
        x, y = rng.normal(size=(2, 12))
        with pytest.raises(ValidationError):
            randomized_measure_probability(x, y, "chi_squared")

    def test_content_keyed_default_stream(self, rng):
        x, y = rng.normal(size=(2, 12))
        a = randomized_measure_probability(x, y, "pearson", n_samples=50)
        b = randomized_measure_probability(x, y, "pearson", n_samples=50)
        assert a == b


class TestRandomizedMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        m = rng.normal(size=(15, 4))
        probs = randomized_measure_matrix(m, "mutual_information", n_samples=30)
        np.testing.assert_allclose(probs, probs.T)
        np.testing.assert_allclose(np.diag(probs), 0.0)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_pearson_matrix_close_to_vectorized(self, rng):
        from repro.core.inference import edge_probability_matrix

        m = rng.normal(size=(16, 4))
        generic = randomized_measure_matrix(m, "pearson", n_samples=400, seed=2)
        # The vectorized one-sided estimator differs in semantics (signed
        # dot); compare against the two-sided form, which matches |r|.
        vectorized = edge_probability_matrix(
            m, n_samples=400, seed=2, semantics="two_sided"
        )
        np.testing.assert_allclose(generic, vectorized, atol=0.12)

    def test_bad_input(self):
        with pytest.raises(ValidationError):
            randomized_measure_matrix(np.zeros(5), "pearson")


class TestParametricProbability:
    def test_range_and_monotonicity(self, rng):
        from repro.core.measures import parametric_edge_probability

        x = rng.normal(size=30)
        strong = parametric_edge_probability(x, x + 0.1 * rng.normal(size=30))
        weak = parametric_edge_probability(x, rng.normal(size=30))
        assert 0.0 <= weak <= strong <= 1.0
        assert strong > 0.99

    def test_agrees_with_permutation_on_gaussian_data(self, rng):
        """Calibration: on truly Gaussian data the permutation test and
        the parametric t-test give similar confidences."""
        from repro.core.measures import (
            parametric_edge_probability,
            randomized_measure_probability,
        )

        diffs = []
        for _ in range(12):
            x = rng.normal(size=40)
            y = 0.5 * x + rng.normal(size=40)
            parametric = parametric_edge_probability(x, y)
            permutation = randomized_measure_probability(
                x, y, "pearson", n_samples=300, rng=rng
            )
            diffs.append(abs(parametric - permutation))
        assert float(np.mean(diffs)) < 0.1

    def test_permutation_stays_calibrated_on_heavy_tails(self, rng):
        """The robustness argument of the paper: under the independence
        null the permutation confidence is exactly calibrated (mean 1/2)
        for *any* sample distribution -- including Cauchy data, where the
        parametric t-test's normality assumption is broken and the two
        measures visibly disagree."""
        from repro.core.measures import (
            parametric_edge_probability,
            randomized_measure_probability,
        )

        parametric = []
        permutation = []
        for _ in range(60):
            x = rng.standard_t(1, size=16)
            y = rng.standard_t(1, size=16)
            parametric.append(parametric_edge_probability(x, y))
            permutation.append(
                randomized_measure_probability(
                    x, y, "pearson", n_samples=200, rng=rng
                )
            )
        assert 0.4 < float(np.mean(permutation)) < 0.6  # exact calibration
        disagreement = float(np.mean(np.abs(np.array(parametric) - permutation)))
        assert disagreement > 0.03  # the parametric test drifts

    def test_sample_count_domain(self):
        from repro.core.measures import parametric_edge_probability

        with pytest.raises(ValidationError):
            parametric_edge_probability(
                np.array([1.0, 2.0, 3.0]), np.array([3.0, 1.0, 2.0])
            )
