"""Unit + integration tests for the R*-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.index.mbr import MBR
from repro.index.pagemanager import PageManager
from repro.index.rstartree import RStarTree


def build_tree(points, gene_ids=None, source_ids=None, max_entries=8):
    dim = points.shape[1]
    tree = RStarTree(dim=dim, max_entries=max_entries)
    for i, point in enumerate(points):
        gene = gene_ids[i] if gene_ids is not None else i
        source = source_ids[i] if source_ids is not None else 0
        tree.insert(point, gene, source, payload=i)
    return tree


class TestInsertion:
    def test_size_tracks_inserts(self, rng):
        tree = build_tree(rng.normal(size=(50, 3)))
        assert len(tree) == 50

    def test_invariants_after_bulk_insert(self, rng):
        tree = build_tree(rng.normal(size=(300, 5)))
        tree.check_invariants()

    def test_invariants_with_duplicates(self, rng):
        pts = np.repeat(rng.normal(size=(10, 3)), 20, axis=0)
        tree = build_tree(pts)
        tree.check_invariants()
        assert len(tree) == 200

    def test_grows_in_height(self, rng):
        small = build_tree(rng.normal(size=(4, 2)), max_entries=4)
        big = build_tree(rng.normal(size=(400, 2)), max_entries=4)
        assert small.height == 1
        assert big.height >= 3

    def test_all_entries_preserved(self, rng):
        pts = rng.normal(size=(120, 4))
        tree = build_tree(pts)
        payloads = sorted(e.payload for e in tree.iter_entries())
        assert payloads == list(range(120))

    def test_wrong_dim_rejected(self, rng):
        tree = RStarTree(dim=3)
        with pytest.raises(ValidationError):
            tree.insert(np.zeros(4), 0, 0, 0)

    def test_insert_after_finalize_rejected(self, rng):
        tree = build_tree(rng.normal(size=(10, 2)))
        tree.finalize()
        with pytest.raises(ValidationError):
            tree.insert(np.zeros(2), 0, 0, 0)

    def test_constructor_domains(self):
        with pytest.raises(ValidationError):
            RStarTree(dim=0)
        with pytest.raises(ValidationError):
            RStarTree(dim=2, max_entries=3)


class TestSearch:
    def test_matches_brute_force(self, rng):
        pts = rng.uniform(0.0, 10.0, size=(250, 3))
        tree = build_tree(pts)
        for _ in range(20):
            low = rng.uniform(0.0, 8.0, size=3)
            high = low + rng.uniform(0.5, 4.0, size=3)
            box = MBR(low, high)
            found = sorted(e.payload for e in tree.search(box))
            expected = sorted(
                int(i)
                for i in range(250)
                if np.all(pts[i] >= low) and np.all(pts[i] <= high)
            )
            assert found == expected

    def test_empty_tree_search(self):
        tree = RStarTree(dim=2)
        assert tree.search(MBR(np.zeros(2), np.ones(2))) == []

    def test_whole_space_returns_everything(self, rng):
        pts = rng.normal(size=(60, 2))
        tree = build_tree(pts)
        box = MBR(np.full(2, -100.0), np.full(2, 100.0))
        assert len(tree.search(box)) == 60

    def test_empty_tree_nearest(self):
        tree = RStarTree(dim=2)
        assert tree.nearest(np.zeros(2), k=3) == []

    def test_never_finalized_tree_searchable(self, rng):
        # search() must not require finalize(): mid-build lookups return
        # exactly the live entries, not [] or stale data.
        pts = rng.normal(size=(30, 2))
        tree = build_tree(pts)
        assert not tree._finalized
        box = MBR(np.full(2, -100.0), np.full(2, 100.0))
        assert len(tree.search(box)) == 30


class TestCoordinateValidation:
    """NaN coordinates must raise, not silently vanish from every search."""

    def test_insert_nan_rejected(self):
        tree = RStarTree(dim=2)
        with pytest.raises(ValidationError):
            tree.insert(np.array([0.0, np.nan]), 0, 0, 0)
        assert len(tree) == 0

    def test_insert_inf_rejected(self):
        tree = RStarTree(dim=2)
        with pytest.raises(ValidationError):
            tree.insert(np.array([np.inf, 0.0]), 0, 0, 0)

    def test_bulk_load_nan_rejected(self, rng):
        from repro.index.node import LeafEntry

        tree = RStarTree(dim=2)
        pts = rng.normal(size=(10, 2))
        pts[4, 1] = np.nan
        # The NaN is caught at LeafEntry construction (its point MBR)
        # or, failing that, by bulk_load's own finiteness check.
        with pytest.raises(ValidationError):
            entries = [
                LeafEntry(p, gene_id=i, source_id=0, payload=i)
                for i, p in enumerate(pts)
            ]
            tree.bulk_load(entries)

    def test_nearest_nan_query_rejected(self, rng):
        tree = build_tree(rng.normal(size=(20, 2)))
        with pytest.raises(ValidationError):
            tree.nearest(np.array([np.nan, 0.0]))

    def test_finite_points_unaffected(self, rng):
        # The validation must not reject any finite workload.
        pts = rng.normal(size=(40, 3)) * 1e6
        tree = build_tree(pts)
        assert len(tree) == 40
        tree.check_invariants()


class TestIOAccounting:
    def test_search_counts_pages(self, rng):
        pages = PageManager()
        tree = RStarTree(dim=2, pages=pages)
        for i, p in enumerate(rng.normal(size=(100, 2))):
            tree.insert(p, i, 0, i)
        pages.reset()
        tree.search(MBR(np.full(2, -100.0), np.full(2, 100.0)))
        # A full-space scan must read every node once.
        assert pages.accesses == pages.num_pages

    def test_pause_resume(self):
        pages = PageManager()
        pid = pages.allocate()
        pages.pause()
        pages.access(pid)
        assert pages.accesses == 0
        pages.resume()
        pages.access(pid)
        assert pages.accesses == 1

    def test_unallocated_page_rejected(self):
        pages = PageManager()
        with pytest.raises(ValidationError):
            pages.access(0)

    def test_page_size_domain(self):
        with pytest.raises(ValidationError):
            PageManager(page_size=32)


class TestSignatures:
    def test_leaf_signatures_cover_entries(self, rng):
        from repro.index.bitvector import signature, signatures_overlap
        from repro.index.invertedfile import SOURCE_SALT

        gene_ids = list(rng.integers(0, 1000, size=80))
        source_ids = list(rng.integers(0, 40, size=80))
        tree = build_tree(
            rng.normal(size=(80, 3)), gene_ids=gene_ids, source_ids=source_ids
        )
        tree.finalize()
        bits = tree.bitvector_bits
        for node in tree.iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    assert signatures_overlap(
                        signature(entry.gene_id, bits), node.vf
                    )
                    assert signatures_overlap(
                        signature(entry.source_id, bits, SOURCE_SALT), node.vd
                    )

    def test_parent_signatures_superset_of_children(self, rng):
        tree = build_tree(rng.normal(size=(150, 3)))
        tree.finalize()
        tree.check_invariants()  # includes signature containment

    def test_root_signature_covers_all_genes(self, rng):
        from repro.index.bitvector import signature, signatures_overlap

        gene_ids = list(range(200, 260))
        tree = build_tree(rng.normal(size=(60, 2)), gene_ids=gene_ids)
        tree.finalize()
        for gene in gene_ids:
            assert signatures_overlap(
                signature(gene, tree.bitvector_bits), tree.root.vf
            )


class TestNodeCorners:
    def test_xy_corner_extraction(self, rng):
        """x_min/x_max/y_min/y_max slice the interleaved dims correctly."""
        d = 2
        pts = rng.uniform(0.0, 5.0, size=(40, 2 * d + 1))
        tree = build_tree(pts)
        for node in tree.iter_nodes():
            if node.mbr is None:
                continue
            np.testing.assert_allclose(node.x_min(d), node.mbr.low[[0, 2]])
            np.testing.assert_allclose(node.x_max(d), node.mbr.high[[0, 2]])
            np.testing.assert_allclose(node.y_min(d), node.mbr.low[[1, 3]])
            np.testing.assert_allclose(node.y_max(d), node.mbr.high[[1, 3]])


class TestQualityHeuristics:
    def test_reasonable_leaf_overlap(self, rng):
        """R* splits should keep sibling leaf overlap modest on uniform
        data (sanity check that the split heuristics do their job)."""
        pts = rng.uniform(0.0, 100.0, size=(500, 2))
        tree = build_tree(pts, max_entries=8)
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        total_area = sum(leaf.mbr.area() for leaf in leaves)
        # Leaves tile ~the data extent; gross over-covering would inflate
        # total leaf area far beyond the 100x100 universe.
        assert total_area < 4.0 * 100.0 * 100.0
