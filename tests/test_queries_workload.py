"""Unit tests for query extraction and workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import EdgeProbabilityEstimator, infer_grn
from repro.data.matrix import GeneFeatureMatrix
from repro.data.queries import extract_query, generate_query_workload
from repro.errors import ValidationError


class TestExtractQuery:
    def test_truth_mode_yields_connected_truth_subgraph(self, small_database):
        matrix = next(m for m in small_database if len(m.truth_edges) >= 4)
        query = extract_query(matrix, 3, rng=1, connectivity="truth")
        assert query.num_genes == 3
        assert query.num_samples == matrix.num_samples
        # the chosen genes span a connected truth subgraph
        adjacency = {g: set() for g in query.gene_ids}
        for u, v in matrix.truth_edges:
            if u in adjacency and v in adjacency:
                adjacency[u].add(v)
                adjacency[v].add(u)
        seen = {query.gene_ids[0]}
        stack = [query.gene_ids[0]]
        while stack:
            for nxt in adjacency[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        assert seen == set(query.gene_ids)

    def test_inferred_mode_yields_connected_inferred_graph(self, small_database):
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=11)
        matrix = list(small_database)[0]
        query = extract_query(
            matrix, 3, rng=2, connectivity="inferred",
            threshold=0.5, estimator=estimator,
        )
        graph = infer_grn(query.values, query.gene_ids, 0.5, estimator)
        assert graph.is_connected()

    def test_query_columns_copy_source_data(self, small_database):
        matrix = list(small_database)[0]
        query = extract_query(matrix, 3, rng=3, connectivity="correlation",
                              threshold=0.0)
        for gene in query.gene_ids:
            np.testing.assert_array_equal(query.column(gene), matrix.column(gene))

    def test_nq_too_large(self, small_database):
        matrix = list(small_database)[0]
        with pytest.raises(ValidationError):
            extract_query(matrix, matrix.num_genes + 1, rng=1)

    def test_nq_too_small(self, small_database):
        with pytest.raises(ValidationError):
            extract_query(list(small_database)[0], 1, rng=1)

    def test_bad_connectivity(self, small_database):
        with pytest.raises(ValidationError):
            extract_query(list(small_database)[0], 3, rng=1, connectivity="psychic")

    def test_unreachable_component_raises(self, rng):
        # Independent noise at a sky-high correlation threshold: no edges.
        matrix = GeneFeatureMatrix(rng.normal(size=(30, 6)), list(range(6)), 0)
        with pytest.raises(ValidationError):
            extract_query(matrix, 4, rng=1, connectivity="correlation",
                          threshold=0.999)


class TestWorkload:
    def test_count_and_sizes(self, small_database):
        workload = generate_query_workload(small_database, n_q=3, count=4, rng=5)
        assert len(workload) == 4
        assert all(q.num_genes == 3 for q in workload)

    def test_queries_come_from_database_sources(self, small_database):
        workload = generate_query_workload(small_database, n_q=3, count=4, rng=5)
        for query in workload:
            source = small_database.get(query.source_id)
            assert set(query.gene_ids) <= set(source.gene_ids)

    def test_deterministic(self, small_database):
        a = generate_query_workload(small_database, n_q=3, count=3, rng=5)
        b = generate_query_workload(small_database, n_q=3, count=3, rng=5)
        for qa, qb in zip(a, b):
            assert qa.source_id == qb.source_id
            assert qa.gene_ids == qb.gene_ids

    def test_impossible_workload_raises(self, small_database):
        with pytest.raises(ValidationError):
            generate_query_workload(
                small_database, n_q=3, count=2, rng=5,
                connectivity="correlation", threshold=0.9999,
                max_attempts_factor=2,
            )

    def test_count_domain(self, small_database):
        with pytest.raises(ValidationError):
            generate_query_workload(small_database, n_q=3, count=0)
