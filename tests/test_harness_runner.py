"""Tests for experiment configs, the runner, and the experiment CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.eval.harness import (
    ENGINE_REGISTRY,
    ExperimentConfig,
    ExperimentRunner,
    ScaleSpec,
    load_config,
)

TOML_TEXT = """
[experiment]
name = "tiny"
seed = 3
repeats = 2
baseline_engine = "baseline"
engines = ["imgrn", "baseline"]

[workload]
kinds = ["containment"]
weights = ["uni"]
gammas = [0.5]
alphas = [0.5]
n_q = 3
num_queries = 2

[[scale]]
n_matrices = 6
genes_range = [8, 10]
"""


def tiny_config(**overrides):
    defaults = {
        "name": "tiny",
        "engines": ("imgrn", "baseline"),
        "baseline_engine": "baseline",
        "kinds": ("containment",),
        "weights": ("uni",),
        "scales": (ScaleSpec(6, (8, 10)),),
        "gammas": (0.5,),
        "alphas": (0.5,),
        "n_q": 3,
        "num_queries": 2,
        "repeats": 2,
        "seed": 3,
    }
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_results():
    return ExperimentRunner(tiny_config()).run()


class TestConfig:
    def test_toml_parses(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(TOML_TEXT, encoding="utf-8")
        config = load_config(path)
        assert config == tiny_config()

    def test_json_parses_roundtrip_shape(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(tiny_config().to_dict()), encoding="utf-8")
        assert load_config(path) == tiny_config()

    def test_unknown_experiment_key_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            TOML_TEXT.replace('seed = 3', 'seed = 3\ntypo_key = 1'),
            encoding="utf-8",
        )
        with pytest.raises(ValidationError, match="typo_key"):
            load_config(path)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError, match="unknown engine"):
            tiny_config(engines=("imgrn", "warp-drive"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown kind"):
            tiny_config(kinds=("teleport",))

    def test_out_of_range_gamma_rejected(self):
        with pytest.raises(ValidationError, match="gamma"):
            tiny_config(gammas=(1.5,))

    def test_scales_required(self):
        with pytest.raises(ValidationError, match="scale"):
            tiny_config(scales=())

    def test_missing_name_rejected(self):
        with pytest.raises(ValidationError, match="name"):
            ExperimentConfig.from_dict({"experiment": {"seed": 1}})

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text("name: tiny", encoding="utf-8")
        with pytest.raises(ValidationError, match="suffix"):
            load_config(path)

    def test_scale_label_stable(self):
        assert ScaleSpec(16, (12, 18)).label == "N16g12-18"

    def test_registry_covers_config_engines(self):
        for name in tiny_config().engines:
            assert name in ENGINE_REGISTRY


class TestRunner:
    def test_row_count_is_full_cross_product(self, tiny_results):
        # 2 engines x 1 kind x 1 gamma x 1 alpha x 1 scale x 2 repeats
        assert len(tiny_results.rows) == 4

    def test_rows_carry_axes_and_provenance(self, tiny_results):
        row = tiny_results.rows[0]
        for column in (
            "engine",
            "kind",
            "weights",
            "scale",
            "gamma",
            "alpha",
            "repeat",
            "seconds",
            "io_accesses",
            "candidates",
            "answers",
            "build_seconds",
            "git_hash",
            "cpu_count",
        ):
            assert column in row

    def test_counters_deterministic_across_repeats(self, tiny_results):
        frame = tiny_results.frame
        for engine in ("imgrn", "baseline"):
            rows = frame.filter(engine=engine).records()
            assert len(rows) == 2
            assert rows[0]["io_accesses"] == rows[1]["io_accesses"]
            assert rows[0]["answers"] == rows[1]["answers"]

    def test_engines_agree_on_answers(self, tiny_results):
        frame = tiny_results.frame
        imgrn = frame.filter(engine="imgrn").records()[0]
        base = frame.filter(engine="baseline").records()[0]
        assert imgrn["answers"] == base["answers"]

    def test_prime_skips_rebuild(self):
        config = tiny_config(engines=("imgrn",), baseline_engine="imgrn")
        primed = ExperimentRunner(config)
        source = ExperimentRunner(config)
        scale = config.scales[0]
        engine = source._engine("imgrn", "uni", scale)
        queries = source._workload("uni", scale)
        primed.prime("imgrn", "uni", scale, engine, queries)
        results = primed.run()
        assert primed._engines[("imgrn", "uni", scale.label)] is engine
        assert all(row["build_seconds"] == 0.0 for row in results.rows)

    def test_topk_axis_has_no_alpha(self):
        config = tiny_config(kinds=("topk",), repeats=1)
        results = ExperimentRunner(config).run()
        assert all(row["alpha"] is None for row in results.rows)
        assert all(row["k"] == config.k for row in results.rows)


class TestExperimentCLI:
    @pytest.fixture()
    def config_path(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(TOML_TEXT, encoding="utf-8")
        return path

    def test_run_report_compare_archive_cycle(
        self, config_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "exp"
        assert (
            main(
                [
                    "experiment",
                    "run",
                    "--config",
                    str(config_path),
                    "--out-dir",
                    str(out_dir),
                    "--label",
                    "T1",
                    "--csv",
                ]
            )
            == 0
        )
        assert (out_dir / "results.json").is_file()
        assert (out_dir / "BENCH_T1.json").is_file()
        assert (out_dir / "results.csv").is_file()

        html = out_dir / "report.html"
        assert (
            main(
                [
                    "experiment",
                    "report",
                    "--results",
                    str(out_dir / "results.json"),
                    "--html",
                    str(html),
                ]
            )
            == 0
        )
        markdown = (out_dir / "report.md").read_text(encoding="utf-8")
        assert "Speedup matrix" in markdown
        assert "95% CI" in markdown
        assert html.read_text(encoding="utf-8").startswith("<!doctype html>")

        archive = tmp_path / "trajectory"
        archive.mkdir()
        assert (
            main(
                [
                    "experiment",
                    "compare",
                    "--new",
                    str(out_dir / "BENCH_T1.json"),
                    "--history",
                    str(archive),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "experiment",
                    "archive",
                    "--bench",
                    str(out_dir / "BENCH_T1.json"),
                    "--dir",
                    str(archive),
                    "--keep",
                    "5",
                    "--label",
                    "gh1",
                ]
            )
            == 0
        )
        assert (archive / "BENCH_gh1.json").is_file()
        # Self-comparison against the archived entry still passes.
        assert (
            main(
                [
                    "experiment",
                    "compare",
                    "--new",
                    str(out_dir / "BENCH_T1.json"),
                    "--history",
                    str(archive),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trajectory gate passed" in out

    def test_compare_fails_on_regression(self, tmp_path):
        from repro.eval.harness.trajectory import bench_payload, write_bench

        archive = tmp_path / "trajectory"
        meta = {"host": "pin", "timestamp": 0.0}
        write_bench(
            bench_payload(
                {"smoke": {"seconds": [0.10, 0.11, 0.10, 0.11, 0.10]}},
                label="old",
                meta=meta,
            ),
            archive / "BENCH_old.json",
        )
        slow = tmp_path / "BENCH_slow.json"
        write_bench(
            bench_payload(
                {"smoke": {"seconds": [0.30, 0.31, 0.30, 0.31, 0.30]}},
                label="slow",
                meta={"host": "pin", "timestamp": 1.0},
            ),
            slow,
        )
        assert (
            main(
                [
                    "experiment",
                    "compare",
                    "--new",
                    str(slow),
                    "--history",
                    str(archive),
                ]
            )
            == 1
        )
