"""Property-based tests (hypothesis) for the index substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.index.bitvector import signature, signature_many, signatures_overlap
from repro.index.mbr import MBR
from repro.index.rstartree import RStarTree

coords = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


def boxes(dim=3):
    return st.tuples(
        hnp.arrays(np.float64, dim, elements=coords),
        hnp.arrays(np.float64, dim, elements=st.floats(0.0, 100.0)),
    ).map(lambda t: MBR(t[0], t[0] + t[1]))


class TestMBRProperties:
    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_overlap_symmetric_and_bounded(self, a, b):
        ab = a.overlap(b)
        assert ab == pytest.approx(b.overlap(a), rel=1e-9, abs=1e-9)
        assert 0.0 <= ab <= min(a.area(), b.area()) + 1e-6 * max(1.0, a.area())

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-6

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_intersects_iff_positive_overlap_or_touching(self, a, b):
        if a.overlap(b) > 0:
            assert a.intersects(b)
        if not a.intersects(b):
            assert a.overlap(b) == 0.0

    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_union_idempotent(self, a):
        assert a.union(a) == a


def point_boxes(dim=3):
    """Degenerate boxes: zero extent on every axis (single points)."""
    return hnp.arrays(np.float64, dim, elements=coords).map(MBR.from_point)


class TestDegenerateBoxProperties:
    """Point boxes (zero extent) exercise the area-underflow edge cases."""

    @given(point_boxes())
    @settings(max_examples=40, deadline=None)
    def test_point_box_geometry(self, a):
        assert a.area() == 0.0
        assert a.margin() == 0.0
        assert a.log_area() == -np.inf
        assert a.contains_point(a.low)

    @given(point_boxes(), point_boxes())
    @settings(max_examples=60, deadline=None)
    def test_point_box_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)
        # Union of two points has zero overlap with measure-zero boxes.
        assert a.overlap(b) == 0.0

    @given(point_boxes(), boxes())
    @settings(max_examples=60, deadline=None)
    def test_enlargement_by_point_box_non_negative(self, p, b):
        assert b.enlargement(p) >= -1e-6
        assert p.enlargement(b) >= -1e-6

    @given(boxes(dim=6))
    @settings(max_examples=40, deadline=None)
    def test_log_area_consistent_with_area(self, a):
        """Where area() does not underflow, exp(log_area()) must agree."""
        area = a.area()
        if area > 0.0:
            assert np.exp(a.log_area()) == pytest.approx(area, rel=1e-9)
        else:
            assert a.log_area() == -np.inf or np.exp(a.log_area()) < 1e-300


class TestBitvectorProperties:
    @given(st.sets(st.integers(0, 10_000), max_size=40), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_no_false_negatives(self, members, probe):
        sig = signature_many(members, 256)
        if probe in members:
            assert signatures_overlap(signature(probe, 256), sig)


class TestRStarTreeProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 120), st.just(3)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_and_search_oracle(self, points):
        tree = RStarTree(dim=3, max_entries=6)
        for i, point in enumerate(points):
            tree.insert(point, gene_id=i, source_id=i % 5, payload=i)
        tree.finalize()
        tree.check_invariants()
        assert len(tree) == points.shape[0]

        # Oracle check on a random-ish box derived from the data.
        low = points.min(axis=0)
        high = low + (points.max(axis=0) - low) * 0.6
        box = MBR(low, high)
        found = sorted(e.payload for e in tree.search(box))
        expected = sorted(
            int(i)
            for i in range(points.shape[0])
            if np.all(points[i] >= box.low) and np.all(points[i] <= box.high)
        )
        assert found == expected

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_degenerate_collinear_points(self, xs):
        """Many duplicate / collinear points must not break splitting."""
        tree = RStarTree(dim=2, max_entries=4)
        for i, x in enumerate(xs):
            tree.insert(np.array([float(x), 0.0]), i, 0, i)
        tree.check_invariants()
        assert len(tree) == len(xs)
