"""Unit tests for ROC evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.eval.roc import ROCCurve, ROCPoint, default_thresholds, roc_curve_from_scores


def perfect_scores(n, truth, ids):
    """Score matrix giving 1.0 to truth edges, 0.0 elsewhere."""
    idx = {g: i for i, g in enumerate(ids)}
    scores = np.zeros((n, n))
    for u, v in truth:
        scores[idx[u], idx[v]] = scores[idx[v], idx[u]] = 1.0
    return scores


class TestRocCurve:
    def test_perfect_classifier_hits_corner(self):
        ids = [0, 1, 2, 3]
        truth = {(0, 1), (2, 3)}
        scores = perfect_scores(4, truth, ids)
        curve = roc_curve_from_scores(scores, ids, truth, label="perfect")
        # at threshold 0.5: TPR=1, FPR=0
        mid = [p for p in curve.points if abs(p.threshold - 0.5) < 1e-9][0]
        assert mid.tpr == 1.0
        assert mid.fpr == 0.0
        assert curve.auc() == pytest.approx(1.0)

    def test_inverted_classifier_poor_auc(self):
        ids = [0, 1, 2, 3]
        truth = {(0, 1)}
        scores = 1.0 - perfect_scores(4, truth, ids)
        np.fill_diagonal(scores, 0.0)
        curve = roc_curve_from_scores(scores, ids, truth)
        assert curve.auc() < 0.5

    def test_monotone_in_threshold(self, rng):
        ids = list(range(10))
        scores = rng.random((10, 10))
        scores = (scores + scores.T) / 2
        np.fill_diagonal(scores, 0.0)
        truth = {(0, 1), (2, 3), (4, 5)}
        curve = roc_curve_from_scores(scores, ids, truth)
        fprs = [p.fpr for p in curve.points]
        tprs = [p.tpr for p in curve.points]
        assert fprs == sorted(fprs, reverse=True)
        assert tprs == sorted(tprs, reverse=True)

    def test_random_scores_auc_near_half(self, rng):
        n = 40
        ids = list(range(n))
        scores = rng.random((n, n))
        scores = (scores + scores.T) / 2
        np.fill_diagonal(scores, 0.0)
        truth = {(2 * i, 2 * i + 1) for i in range(12)}
        curve = roc_curve_from_scores(scores, ids, truth)
        assert 0.3 < curve.auc() < 0.7

    def test_tpr_at_fpr(self):
        curve = ROCCurve(
            "x",
            (
                ROCPoint(0.1, 0.5, 0.9),
                ROCPoint(0.5, 0.08, 0.7),
                ROCPoint(0.9, 0.01, 0.3),
            ),
        )
        assert curve.tpr_at_fpr(0.1) == 0.7
        assert curve.tpr_at_fpr(0.001) == 0.0

    def test_empty_truth_rejected(self, rng):
        scores = np.zeros((4, 4))
        with pytest.raises(ValidationError):
            roc_curve_from_scores(scores, [0, 1, 2, 3], set())

    def test_complete_truth_rejected(self):
        ids = [0, 1, 2]
        truth = {(0, 1), (1, 2), (0, 2)}
        with pytest.raises(ValidationError):
            roc_curve_from_scores(np.zeros((3, 3)), ids, truth)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            roc_curve_from_scores(np.zeros((3, 3)), [0, 1], {(0, 1)})

    def test_default_thresholds(self):
        t = default_thresholds(0.01)
        assert t[0] == 0.0
        assert t[-1] == pytest.approx(1.0)
        assert len(t) == 101
        with pytest.raises(ValidationError):
            default_thresholds(0.0)
