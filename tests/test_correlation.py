"""Unit tests for Pearson / partial correlation and the distance identity."""

from __future__ import annotations

import logging

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.correlation import (
    absolute_correlation_matrix,
    absolute_pearson,
    correlation_from_distance,
    correlation_matrix,
    distance_from_correlation,
    partial_correlation_matrix,
    pearson,
)
from repro.core.standardize import standardize_vector
from repro.errors import DegenerateVectorError, DimensionMismatchError


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_symmetry(self, rng):
        x, y = rng.normal(size=(2, 30))
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_matches_numpy_corrcoef(self, rng):
        x, y = rng.normal(size=(2, 50))
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_clamped_to_unit_interval(self, rng):
        x = rng.normal(size=25)
        assert -1.0 <= pearson(x, x + 1e-15 * rng.normal(size=25)) <= 1.0

    def test_constant_raises(self):
        with pytest.raises(DegenerateVectorError):
            pearson(np.ones(5), np.arange(5.0))

    def test_length_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            pearson(np.arange(4.0), np.arange(5.0))

    def test_absolute_pearson(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert absolute_pearson(x, -x) == pytest.approx(1.0)


class TestCorrelationMatrix:
    def test_matches_pairwise_pearson(self, rng):
        m = rng.normal(size=(20, 6))
        corr = correlation_matrix(m)
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert corr[i, j] == pytest.approx(
                        pearson(m[:, i], m[:, j]), abs=1e-10
                    )

    def test_unit_diagonal(self, rng):
        corr = correlation_matrix(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_symmetric(self, rng):
        corr = correlation_matrix(rng.normal(size=(15, 5)))
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)

    def test_absolute_variant_non_negative(self, rng):
        corr = absolute_correlation_matrix(rng.normal(size=(15, 5)))
        assert np.all(corr >= 0.0)

    def test_constant_column_raises(self, rng):
        m = rng.normal(size=(10, 3))
        m[:, 0] = 2.0
        with pytest.raises(DegenerateVectorError):
            correlation_matrix(m)

    def test_1d_raises(self):
        with pytest.raises(DimensionMismatchError):
            correlation_matrix(np.arange(5.0))


class TestPartialCorrelation:
    def test_chain_structure_suppressed(self, rng):
        # x -> y -> z: x and z correlate marginally but not partially.
        n = 4000
        x = rng.normal(size=n)
        y = x + 0.3 * rng.normal(size=n)
        z = y + 0.3 * rng.normal(size=n)
        m = np.column_stack([x, y, z])
        marginal = np.abs(correlation_matrix(m))
        partial = np.abs(partial_correlation_matrix(m, shrinkage=0.0))
        assert marginal[0, 2] > 0.7
        assert partial[0, 2] < 0.2
        assert partial[0, 1] > 0.5
        assert partial[1, 2] > 0.5

    def test_unit_diagonal_and_symmetry(self, rng):
        p = partial_correlation_matrix(rng.normal(size=(30, 5)))
        np.testing.assert_allclose(np.diag(p), 1.0)
        np.testing.assert_allclose(p, p.T, atol=1e-10)

    def test_singular_case_survives_with_shrinkage(self, rng):
        # More genes than samples: raw correlation matrix is singular.
        m = rng.normal(size=(5, 12))
        p = partial_correlation_matrix(m, shrinkage=1e-2)
        assert np.all(np.isfinite(p))
        assert np.all(np.abs(p) <= 1.0)

    def test_bad_shrinkage_raises(self, rng):
        with pytest.raises(DimensionMismatchError):
            partial_correlation_matrix(rng.normal(size=(10, 3)), shrinkage=1.5)

    def test_near_singular_warns_and_stays_bounded(self, rng, caplog):
        # Duplicated columns (plus float noise far below the conditioning
        # threshold) make the correlation matrix numerically singular; with
        # shrinkage off, inv() either raises or returns a precision matrix
        # whose diagonal goes non-positive. Either way the function must
        # warn and fall back to the pseudo-inverse instead of silently
        # flipping signs with abs().
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        m = np.column_stack([x, x + 1e-14 * rng.normal(size=40), y])
        with caplog.at_level(logging.WARNING, logger="repro.core.correlation"):
            p = partial_correlation_matrix(m, shrinkage=0.0)
        assert caplog.records, "expected a warning about the ill-conditioned inversion"
        assert np.all(np.isfinite(p))
        assert np.all(np.abs(p) <= 1.0)
        np.testing.assert_allclose(np.diag(p), 1.0)

    def test_well_conditioned_does_not_warn(self, rng, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.correlation"):
            partial_correlation_matrix(rng.normal(size=(60, 4)))
        assert not caplog.records


class TestDistanceIdentity:
    """The Appendix-B identity ``dist^2 = 2*l*(1 - cor)`` for z-scored data."""

    def test_identity_holds_for_standardized_vectors(self, rng):
        x = standardize_vector(rng.normal(size=24))
        y = standardize_vector(rng.normal(size=24))
        dist = float(np.linalg.norm(x - y))
        assert dist == pytest.approx(
            distance_from_correlation(pearson(x, y), 24), abs=1e-9
        )

    def test_roundtrip(self):
        for cor in (-1.0, -0.4, 0.0, 0.3, 0.99, 1.0):
            dist = distance_from_correlation(cor, 16)
            assert correlation_from_distance(dist, 16) == pytest.approx(cor)

    def test_extremes(self):
        assert distance_from_correlation(1.0, 10) == pytest.approx(0.0)
        assert distance_from_correlation(-1.0, 10) == pytest.approx(
            2.0 * np.sqrt(10.0)
        )

    def test_domain_checks(self):
        with pytest.raises(DimensionMismatchError):
            distance_from_correlation(1.5, 10)
        with pytest.raises(DimensionMismatchError):
            correlation_from_distance(-0.1, 10)
        with pytest.raises(DimensionMismatchError):
            distance_from_correlation(0.5, 1)

    def test_clamped_at_distance_overshoot(self):
        # A distance just past 2*sqrt(l) (float overshoot of the maximum
        # standardized distance) must not produce a correlation below -1.
        for length in (2, 10, 100):
            extreme = 2.0 * np.sqrt(float(length))
            overshoot = np.nextafter(extreme, np.inf)
            cor = correlation_from_distance(overshoot, length)
            assert cor >= -1.0
            assert correlation_from_distance(extreme * (1.0 + 1e-12), length) == -1.0

    @given(
        cor=st.floats(min_value=-1.0, max_value=1.0),
        length=st.integers(min_value=2, max_value=512),
    )
    def test_roundtrip_property(self, cor, length):
        dist = distance_from_correlation(cor, length)
        back = correlation_from_distance(dist, length)
        assert -1.0 <= back <= 1.0
        assert back == pytest.approx(cor, abs=1e-9)

    @given(
        frac=st.floats(min_value=0.0, max_value=1.0),
        length=st.integers(min_value=2, max_value=512),
    )
    def test_distance_roundtrip_property(self, frac, length):
        # dist -> cor -> dist across the whole valid range [0, 2*sqrt(l)],
        # including the exact extremes (frac = 0 and 1).
        dist = frac * 2.0 * np.sqrt(float(length))
        cor = correlation_from_distance(dist, length)
        assert -1.0 <= cor <= 1.0
        assert distance_from_correlation(cor, length) == pytest.approx(
            dist, abs=1e-6
        )
