"""Integration tests for engine extensions: top-k, incremental insert,
anchor strategies, and the faithful Baseline materialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BaselineEngine, EngineConfig, GeneFeatureDatabase, IMGRNEngine
from repro.data.synthetic import generate_matrix
from repro.config import SyntheticConfig
from repro.errors import IndexNotBuiltError, ValidationError

from conftest import TEST_CONFIG


class TestQueryTopK:
    def test_topk_subset_of_unfiltered(self, built_engine, query_workload):
        query = query_workload[0]
        all_answers = built_engine.query(query, gamma=0.5, alpha=0.0)
        top2 = built_engine.query_topk(query, gamma=0.5, k=2)
        assert len(top2.answers) <= 2
        assert set(top2.answer_sources()) <= set(all_answers.answer_sources())

    def test_topk_takes_highest_probabilities(self, built_engine, query_workload):
        # Pick a workload query matching at least 2 sources (a low gamma
        # guarantees multi-source matches on overlapping gene sets).
        query, all_answers = None, []
        for candidate in query_workload:
            answers = built_engine.query(candidate, gamma=0.2, alpha=0.0).answers
            if len(answers) >= 2:
                query, all_answers = candidate, answers
                break
        assert query is not None, "workload should contain a multi-match query"
        k = max(1, len(all_answers) - 1)
        top = built_engine.query_topk(query, gamma=0.2, k=k).answers
        best_probs = sorted((a.probability for a in all_answers), reverse=True)
        assert [a.probability for a in top] == best_probs[:k]

    def test_topk_sorted_descending(self, built_engine, query_workload):
        top = built_engine.query_topk(query_workload[1], gamma=0.5, k=5).answers
        probs = [a.probability for a in top]
        assert probs == sorted(probs, reverse=True)

    def test_k_domain(self, built_engine, query_workload):
        with pytest.raises(ValidationError):
            built_engine.query_topk(query_workload[0], gamma=0.5, k=0)


class TestAddMatrix:
    @pytest.fixture()
    def engine_and_new_matrix(self, small_database):
        # A fresh engine (the session-scoped one must stay pristine).
        engine = IMGRNEngine(small_database_copy(small_database), TEST_CONFIG)
        engine.build()
        new_matrix = generate_matrix(
            SyntheticConfig(
                genes_range=(10, 14), samples_range=(8, 12), gene_pool=50, seed=77
            ),
            source_id=500,
            rng=np.random.default_rng(77),
        )
        return engine, new_matrix

    def test_incremental_equals_full_rebuild_answers(
        self, engine_and_new_matrix, query_workload
    ):
        engine, new_matrix = engine_and_new_matrix
        engine.add_matrix(new_matrix)
        engine.tree.check_invariants()

        rebuilt = IMGRNEngine(engine.database, TEST_CONFIG)
        rebuilt.build()
        for query in query_workload:
            incremental = engine.query(query, gamma=0.5, alpha=0.2).answer_sources()
            full = rebuilt.query(query, gamma=0.5, alpha=0.2).answer_sources()
            assert incremental == full

    def test_new_source_becomes_findable(self, engine_and_new_matrix):
        engine, new_matrix = engine_and_new_matrix
        engine.add_matrix(new_matrix)
        # Query cut from the new matrix must match it.
        query = new_matrix.submatrix(list(new_matrix.gene_ids[:3]))
        result = engine.query(query, gamma=0.5, alpha=0.0)
        assert 500 in result.answer_sources()

    def test_tree_size_grows(self, engine_and_new_matrix):
        engine, new_matrix = engine_and_new_matrix
        before = len(engine.tree)
        engine.add_matrix(new_matrix)
        assert len(engine.tree) == before + new_matrix.num_genes

    def test_duplicate_source_rejected(self, engine_and_new_matrix):
        engine, new_matrix = engine_and_new_matrix
        engine.add_matrix(new_matrix)
        with pytest.raises(ValidationError):
            engine.add_matrix(new_matrix)

    def test_requires_built_index(self, small_database):
        engine = IMGRNEngine(small_database, TEST_CONFIG)
        matrix = next(iter(small_database))
        with pytest.raises(IndexNotBuiltError):
            engine.add_matrix(matrix)


class TestAnchorStrategies:
    @pytest.mark.parametrize("strategy", ["highest_degree", "random", "first"])
    def test_same_answers_for_every_anchor(
        self, small_database, query_workload, strategy
    ):
        engine = IMGRNEngine(
            small_database, TEST_CONFIG.with_(anchor_strategy=strategy)
        )
        engine.build()
        reference = IMGRNEngine(small_database, TEST_CONFIG)
        reference.build()
        for query in query_workload:
            assert (
                engine.query(query, gamma=0.5, alpha=0.2).answer_sources()
                == reference.query(query, gamma=0.5, alpha=0.2).answer_sources()
            )

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValidationError):
            EngineConfig(anchor_strategy="psychic")


class TestBaselineMaterialization:
    def test_materialized_grn_matches_direct_inference(self, small_database):
        """The Baseline's thresholded store equals infer_grn edge-for-edge."""
        from repro.core.inference import EdgeProbabilityEstimator, infer_grn

        baseline = BaselineEngine(small_database, TEST_CONFIG)
        baseline.build()
        matrix = next(iter(small_database))
        estimator = EdgeProbabilityEstimator(
            n_samples=TEST_CONFIG.mc_samples, seed=TEST_CONFIG.seed
        )
        store = baseline._store[matrix.source_id]
        materialized = BaselineEngine._materialize_grn(matrix, store, 0.5)
        # pair_probability and the store share content-keyed streams, so
        # the graphs agree exactly.
        direct_edges = {}
        for s in range(matrix.num_genes):
            for t in range(s + 1, matrix.num_genes):
                p = estimator.pair_probability(
                    matrix.values[:, s], matrix.values[:, t]
                )
                if p > 0.5:
                    key = tuple(
                        sorted((matrix.gene_ids[s], matrix.gene_ids[t]))
                    )
                    direct_edges[key] = p
        assert dict(materialized.edges()) == pytest.approx(direct_edges)
        _ = infer_grn  # referenced for readers; equivalence shown above

    def test_candidates_equal_database_size(self, small_database, query_workload):
        baseline = BaselineEngine(small_database, TEST_CONFIG)
        baseline.build()
        result = baseline.query(query_workload[0], gamma=0.5, alpha=0.5)
        assert result.stats.candidates == len(small_database)


def small_database_copy(database: GeneFeatureDatabase) -> GeneFeatureDatabase:
    """A structurally identical database instance safe to mutate."""
    return GeneFeatureDatabase(iter(database))
