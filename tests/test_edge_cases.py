"""Edge-case and failure-injection battery across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EngineConfig,
    GeneFeatureDatabase,
    GeneFeatureMatrix,
    IMGRNEngine,
)
from repro.core.inference import edge_probability_distance
from repro.data.queries import extract_query
from repro.errors import DegenerateVectorError, ValidationError

from conftest import TEST_CONFIG


class TestQueryGenesAbsentFromDatabase:
    def test_query_with_unknown_genes_returns_empty(self, built_engine, rng):
        query = GeneFeatureMatrix(
            rng.normal(size=(10, 3)), [9001, 9002, 9003], 0
        )
        result = built_engine.query(query, gamma=0.5, alpha=0.0)
        assert result.answers == []

    def test_query_with_partially_known_genes(self, built_engine, small_database, rng):
        known = next(iter(small_database)).gene_ids[0]
        query = GeneFeatureMatrix(
            rng.normal(size=(10, 2)), [known, 9999], 0
        )
        result = built_engine.query(query, gamma=0.5, alpha=0.0)
        assert result.answers == []


class TestDegenerateShapes:
    def test_single_source_database(self, rng):
        matrix = GeneFeatureMatrix(
            rng.normal(size=(10, 6)), list(range(6)), 0
        )
        engine = IMGRNEngine(GeneFeatureDatabase([matrix]), TEST_CONFIG)
        engine.build()
        query = matrix.submatrix([0, 1, 2])
        result = engine.query(query, gamma=0.2, alpha=0.0)
        assert result.answer_sources() == [0]

    def test_two_gene_matrices(self, rng):
        matrices = [
            GeneFeatureMatrix(rng.normal(size=(8, 2)), [0, 1], sid)
            for sid in range(5)
        ]
        engine = IMGRNEngine(GeneFeatureDatabase(matrices), TEST_CONFIG)
        engine.build()
        query = matrices[0].submatrix([0, 1])
        result = engine.query(query, gamma=0.2, alpha=0.0)
        assert 0 in result.answer_sources()

    def test_minimum_sample_count(self, rng):
        matrix = GeneFeatureMatrix(rng.normal(size=(3, 4)), list(range(4)), 0)
        engine = IMGRNEngine(GeneFeatureDatabase([matrix]), TEST_CONFIG)
        engine.build()
        result = engine.query(matrix.submatrix([0, 1]), gamma=0.2, alpha=0.0)
        assert result.answer_sources() == [0]

    def test_identical_columns_pair(self, rng):
        """Duplicate probes: distance 0, probability ~1."""
        x = rng.normal(size=12)
        p = edge_probability_distance(x, x.copy(), n_samples=100, rng=rng)
        assert p > 0.95

    def test_many_pivots_tiny_matrices(self, rng):
        """d exceeding every matrix width exercises pivot padding."""
        matrices = [
            GeneFeatureMatrix(rng.normal(size=(8, 3)), [0, 1, 2], sid)
            for sid in range(4)
        ]
        engine = IMGRNEngine(
            GeneFeatureDatabase(matrices),
            EngineConfig(num_pivots=4, mc_samples=32, seed=1),
        )
        engine.build()
        engine.tree.check_invariants()
        result = engine.query(matrices[1].submatrix([0, 1]), gamma=0.2, alpha=0.0)
        assert 1 in result.answer_sources()


class TestThresholdExtremes:
    def test_gamma_zero_keeps_all_positive_probability_edges(
        self, built_engine, query_workload
    ):
        result = built_engine.query(query_workload[0], gamma=0.0, alpha=0.0)
        # gamma=0: every pair with p > 0 is a query edge -> dense query.
        n = query_workload[0].num_genes
        assert result.query_graph.num_edges <= n * (n - 1) // 2

    def test_alpha_near_one_rarely_answers(self, built_engine, query_workload):
        strict = built_engine.query(query_workload[0], gamma=0.5, alpha=0.99)
        loose = built_engine.query(query_workload[0], gamma=0.5, alpha=0.0)
        assert set(strict.answer_sources()) <= set(loose.answer_sources())

    def test_high_gamma_empty_query_graph_path(self, built_engine, small_database, rng):
        """At gamma=0.99 most query graphs are edge-free; the containment
        fallback must still behave."""
        matrix = next(iter(small_database))
        query = GeneFeatureMatrix(
            rng.normal(size=(matrix.num_samples, 2)),
            list(matrix.gene_ids[:2]),
            matrix.source_id,
        )
        result = built_engine.query(query, gamma=0.99, alpha=0.0)
        if result.query_graph.num_edges == 0:
            for source in result.answer_sources():
                holder = built_engine.database.get(source)
                assert all(g in holder for g in query.gene_ids)


class TestMalformedInputs:
    def test_constant_query_column_rejected_at_matrix_level(self, rng):
        values = rng.normal(size=(8, 3))
        values[:, 1] = 5.0
        with pytest.raises(DegenerateVectorError):
            GeneFeatureMatrix(values, [0, 1, 2], 0)

    def test_extract_query_from_tiny_matrix(self, rng):
        matrix = GeneFeatureMatrix(rng.normal(size=(8, 2)), [0, 1], 0)
        with pytest.raises(ValidationError):
            extract_query(matrix, 3, rng=1)

    def test_engine_rejects_bad_thresholds(self, built_engine, query_workload):
        for gamma, alpha in ((-0.1, 0.5), (1.0, 0.5), (0.5, -0.1), (0.5, 1.0)):
            with pytest.raises(ValidationError):
                built_engine.query(query_workload[0], gamma=gamma, alpha=alpha)


class TestGeneIdExtremes:
    def test_large_gene_ids(self, rng):
        """Gene IDs far apart stress the gene-ID index dimension."""
        big_ids = [10**9, 2 * 10**9, 3 * 10**9]
        matrices = [
            GeneFeatureMatrix(rng.normal(size=(8, 3)), big_ids, sid)
            for sid in range(4)
        ]
        engine = IMGRNEngine(GeneFeatureDatabase(matrices), TEST_CONFIG)
        engine.build()
        result = engine.query(matrices[0].submatrix(big_ids[:2]), gamma=0.2, alpha=0.0)
        assert 0 in result.answer_sources()

    def test_disjoint_gene_namespaces(self, rng):
        """Sources sharing no genes: cross-source matching impossible."""
        matrices = [
            GeneFeatureMatrix(
                rng.normal(size=(8, 4)),
                [sid * 100 + k for k in range(4)],
                sid,
            )
            for sid in range(4)
        ]
        engine = IMGRNEngine(GeneFeatureDatabase(matrices), TEST_CONFIG)
        engine.build()
        query = matrices[2].submatrix([200, 201])
        result = engine.query(query, gamma=0.2, alpha=0.0)
        assert result.answer_sources() == [2]
