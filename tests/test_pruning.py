"""Unit tests for the pruning lemmas (3-6) -- above all, *soundness*.

Every bound must over-estimate the true (exact, enumerated) probability:
a pruned edge / subgraph / node pair can never be a real answer.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.inference import edge_probability_exact
from repro.core.pruning import (
    combine_edge_bounds,
    edge_inference_prunable,
    graph_existence_prunable,
    graph_existence_upper_bound,
    index_pair_prunable,
    markov_edge_upper_bound,
    pivot_edge_upper_bound,
    pivot_pruning_condition,
)
from repro.core.randomization import (
    enumerate_permutation_distances,
    expected_randomized_distance_jensen,
)
from repro.core.standardize import standardize_vector
from repro.errors import ValidationError


def _standardized_pair(rng, length=6):
    x = standardize_vector(rng.normal(size=length))
    y = standardize_vector(rng.normal(size=length))
    return x, y


class TestMarkovBound:
    def test_upper_bounds_exact_probability(self, rng):
        for _ in range(25):
            x, y = _standardized_pair(rng)
            exact = edge_probability_exact(x, y)
            distance = float(np.linalg.norm(x - y))
            expected = expected_randomized_distance_jensen(y, x)
            bound = markov_edge_upper_bound(distance, expected)
            assert bound >= exact - 1e-12

    def test_exact_expectation_also_sound(self, rng):
        """Markov with the exact E[Z] (not just the Jensen bound) is sound."""
        for _ in range(25):
            x, y = _standardized_pair(rng)
            exact = edge_probability_exact(x, y)
            distance = float(np.linalg.norm(x - y))
            exact_expectation = float(
                np.mean(enumerate_permutation_distances(x, y))
            )
            assert markov_edge_upper_bound(distance, exact_expectation) >= exact - 1e-12

    def test_clamped_to_one(self):
        assert markov_edge_upper_bound(0.5, 10.0) == 1.0

    def test_zero_distance_vacuous(self):
        assert markov_edge_upper_bound(0.0, 1.0) == 1.0

    def test_domain(self):
        with pytest.raises(ValidationError):
            markov_edge_upper_bound(-1.0, 1.0)
        with pytest.raises(ValidationError):
            markov_edge_upper_bound(1.0, -1.0)

    def test_floor_for_standardized_vectors(self, rng):
        """For z-scored data the Markov bound can never dip below 1/sqrt(2):
        E[Z] ~= sqrt(2l) while dist <= 2 sqrt(l). Pins why the probability
        pruning only bites at high gamma (>= 0.8 in the paper's grid)."""
        x, y = _standardized_pair(rng, length=8)
        distance = float(np.linalg.norm(x - y))
        bound = markov_edge_upper_bound(
            distance, expected_randomized_distance_jensen(y, x)
        )
        assert bound >= 1.0 / math.sqrt(2.0) - 1e-9


class TestEdgeInferencePruning:
    def test_prunes_at_or_below_gamma(self):
        assert edge_inference_prunable(0.5, 0.5)
        assert edge_inference_prunable(0.3, 0.5)
        assert not edge_inference_prunable(0.51, 0.5)

    def test_gamma_domain(self):
        with pytest.raises(ValidationError):
            edge_inference_prunable(0.5, 1.0)

    def test_never_prunes_true_edges(self, rng):
        """End-to-end soundness: if the bound prunes, exact p <= gamma."""
        gamma = 0.8
        for _ in range(30):
            x, y = _standardized_pair(rng)
            distance = float(np.linalg.norm(x - y))
            bound = markov_edge_upper_bound(
                distance, expected_randomized_distance_jensen(y, x)
            )
            if edge_inference_prunable(bound, gamma):
                assert edge_probability_exact(x, y) <= gamma + 1e-12


class TestGraphExistencePruning:
    def test_product(self):
        assert graph_existence_upper_bound([0.5, 0.5]) == pytest.approx(0.25)

    def test_empty_product_is_one(self):
        assert graph_existence_upper_bound([]) == 1.0

    def test_zero_short_circuit(self):
        assert graph_existence_upper_bound([0.9, 0.0, 0.8]) == 0.0

    def test_bad_bound_rejected(self):
        with pytest.raises(ValidationError):
            graph_existence_upper_bound([1.2])

    def test_prunable(self):
        assert graph_existence_prunable(0.2, 0.2)
        assert not graph_existence_prunable(0.21, 0.2)

    def test_upper_bounds_product_of_exacts(self, rng):
        """UB_Pr{G} with per-edge Markov bounds dominates prod of exacts."""
        xs = [standardize_vector(rng.normal(size=6)) for _ in range(4)]
        bounds, exacts = [], []
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            distance = float(np.linalg.norm(xs[a] - xs[b]))
            bounds.append(
                markov_edge_upper_bound(
                    distance, expected_randomized_distance_jensen(xs[b], xs[a])
                )
            )
            exacts.append(edge_probability_exact(xs[a], xs[b]))
        assert graph_existence_upper_bound(bounds) >= np.prod(exacts) - 1e-12


class TestPivotBound:
    def _embed(self, vec, pivots):
        x = np.array([float(np.linalg.norm(vec - p)) for p in pivots])
        y = np.array(
            [expected_randomized_distance_jensen(vec, p) for p in pivots]
        )
        return x, y

    def test_upper_bounds_exact_probability(self, rng):
        for _ in range(25):
            length = 6
            xs = standardize_vector(rng.normal(size=length))
            xt = standardize_vector(rng.normal(size=length))
            pivots = [standardize_vector(rng.normal(size=length)) for _ in range(3)]
            gx, _gy = self._embed(xs, pivots)
            tx, ty = self._embed(xt, pivots)
            bound = pivot_edge_upper_bound(gx, tx, ty)
            assert bound >= edge_probability_exact(xs, xt) - 1e-12

    def test_never_tighter_than_markov_on_true_distance(self, rng):
        """The pivot bound relaxes dist via the triangle inequality, so it
        can only be looser than Markov on the true distance."""
        length = 10
        xs = standardize_vector(rng.normal(size=length))
        xt = standardize_vector(rng.normal(size=length))
        pivots = [standardize_vector(rng.normal(size=length)) for _ in range(2)]
        gx, _ = self._embed(xs, pivots)
        tx, ty = self._embed(xt, pivots)
        pivot = pivot_edge_upper_bound(gx, tx, ty)
        distance = float(np.linalg.norm(xs - xt))
        markov = markov_edge_upper_bound(
            distance, expected_randomized_distance_jensen(xt, xs)
        )
        assert pivot >= markov - 1e-9

    def test_case1_vacuous(self):
        # C <= 0 for every pivot -> bound is 1.
        xs = np.array([5.0, 5.0])
        xt = np.array([5.0, 5.0])
        yt = np.array([1.0, 1.0])
        assert pivot_edge_upper_bound(xs, xt, yt) == 1.0

    def test_case2_value(self):
        # d=1: C = |xs-xt| - xs = |2-10| - 2 = 6 -> bound = y/6.
        assert pivot_edge_upper_bound(
            np.array([2.0]), np.array([10.0]), np.array([3.0])
        ) == pytest.approx(0.5)

    def test_condition_equivalent_to_bound(self):
        xs, xt, yt = np.array([2.0]), np.array([10.0]), np.array([3.0])
        assert pivot_pruning_condition(xs, xt, yt, gamma=0.5)
        assert not pivot_pruning_condition(xs, xt, yt, gamma=0.4)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            pivot_edge_upper_bound(np.ones(2), np.ones(3), np.ones(2))


class TestIndexPruning:
    def test_prunes_only_when_every_pair_prunable(self, rng):
        """Lemma-6 soundness: if a node pair is pruned, every contained
        point pair satisfies the (one-sided) pivot pruning condition."""
        gamma = 0.6
        d = 2
        for _ in range(60):
            # Random point clouds standing in for node contents.
            a_x = rng.uniform(0.0, 4.0, size=(4, d))
            b_x = rng.uniform(0.0, 9.0, size=(4, d))
            b_y = rng.uniform(0.0, 5.0, size=(4, d))
            if not index_pair_prunable(
                a_x.max(axis=0), b_x.min(axis=0), b_y.max(axis=0), gamma
            ):
                continue
            for xs in a_x:
                for xt, yt in zip(b_x, b_y):
                    # One-sided variant of the point condition (Eq. 9).
                    gap = np.max(xt - xs)
                    conditions = [
                        yt[w] <= gamma * (gap - xs[w]) for w in range(d)
                    ]
                    assert any(conditions)

    def test_gamma_zero_never_prunes(self):
        assert not index_pair_prunable(
            np.zeros(2), np.full(2, 10.0), np.zeros(2), gamma=0.0
        )

    def test_obviously_far_pair_pruned(self):
        # E_a near origin, E_b with huge x and tiny y.
        assert index_pair_prunable(
            np.array([1.0, 1.0]),
            np.array([100.0, 100.0]),
            np.array([0.5, 0.5]),
            gamma=0.5,
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            index_pair_prunable(np.ones(2), np.ones(3), np.ones(2), 0.5)

    def test_gamma_domain(self):
        with pytest.raises(ValidationError):
            index_pair_prunable(np.ones(2), np.ones(2), np.ones(2), 1.0)


class TestCombineBounds:
    def test_min(self):
        assert combine_edge_bounds(0.7, 0.9) == 0.7

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            combine_edge_bounds(float("nan"), 0.5)
