"""Unit tests for bit-vector signatures and the inverted bit-vector file."""

from __future__ import annotations

import pytest

from repro.errors import UnknownGeneError, ValidationError
from repro.index.bitvector import (
    hash_bit,
    popcount,
    signature,
    signature_many,
    signatures_overlap,
)
from repro.index.invertedfile import InvertedBitVectorFile


class TestHashing:
    def test_deterministic(self):
        assert hash_bit(42, 64) == hash_bit(42, 64)

    def test_within_range(self):
        for value in range(200):
            assert 0 <= hash_bit(value, 64) < 64

    def test_salt_changes_hash(self):
        hits = sum(
            hash_bit(v, 1024, salt=0) == hash_bit(v, 1024, salt=1)
            for v in range(200)
        )
        assert hits < 10  # ~200/1024 expected collisions

    def test_spread(self):
        """The mix should hit most buckets for sequential IDs."""
        buckets = {hash_bit(v, 64) for v in range(640)}
        assert len(buckets) >= 60

    def test_bits_domain(self):
        with pytest.raises(ValidationError):
            hash_bit(1, 0)


class TestSignatures:
    def test_single_bit(self):
        assert popcount(signature(7, 64)) == 1

    def test_many_is_or(self):
        combined = signature_many([1, 2, 3], 64)
        for v in (1, 2, 3):
            assert signatures_overlap(signature(v, 64), combined)

    def test_no_false_negatives(self):
        """A member's signature always overlaps the set signature."""
        members = list(range(0, 500, 7))
        set_sig = signature_many(members, 256)
        for m in members:
            assert signatures_overlap(signature(m, 256), set_sig)

    def test_disjoint_small_sets_usually_disjoint(self):
        a = signature_many(range(10), 1024)
        b = signature_many(range(1000, 1010), 1024)
        # With 20 bits in 1024, overlap is unlikely; allow either, but the
        # popcounts must be correct.
        assert popcount(a) <= 10
        assert popcount(b) <= 10

    def test_empty_set_signature_zero(self):
        assert signature_many([], 64) == 0
        assert not signatures_overlap(0, signature(3, 64))


class TestInvertedFile:
    def test_add_and_lookup(self):
        inverted = InvertedBitVectorFile(bits=256)
        inverted.add(gene_id=5, source_id=1)
        inverted.add(gene_id=5, source_id=2)
        inverted.add(gene_id=9, source_id=3)
        assert inverted.sources_of(5) == frozenset({1, 2})
        assert inverted.sources_of(9) == frozenset({3})
        assert 5 in inverted
        assert len(inverted) == 2

    def test_signature_covers_all_sources(self):
        from repro.index.invertedfile import SOURCE_SALT
        from repro.index.bitvector import signature as sig

        inverted = InvertedBitVectorFile(bits=256)
        for source in range(20):
            inverted.add(7, source)
        combined = inverted.sources_signature(7)
        for source in range(20):
            assert signatures_overlap(sig(source, 256, SOURCE_SALT), combined)

    def test_unknown_gene_signature_zero(self):
        inverted = InvertedBitVectorFile(bits=64)
        assert inverted.sources_signature(12345) == 0

    def test_unknown_gene_sources_raises(self):
        inverted = InvertedBitVectorFile(bits=64)
        with pytest.raises(UnknownGeneError):
            inverted.sources_of(12345)

    def test_bits_domain(self):
        with pytest.raises(ValidationError):
            InvertedBitVectorFile(bits=4)


class TestInvertedFileRemoval:
    def test_remove_source_rebuilds_signature(self):
        from repro.index.invertedfile import SOURCE_SALT
        from repro.index.bitvector import signature as sig

        inverted = InvertedBitVectorFile(bits=256)
        inverted.add(7, 1)
        inverted.add(7, 2)
        inverted.remove_source(1, [7])
        assert inverted.sources_of(7) == frozenset({2})
        assert inverted.sources_signature(7) == sig(2, 256, SOURCE_SALT)

    def test_remove_last_source_drops_gene(self):
        inverted = InvertedBitVectorFile(bits=256)
        inverted.add(7, 1)
        inverted.remove_source(1, [7])
        assert 7 not in inverted
        assert inverted.sources_signature(7) == 0

    def test_remove_unknown_pair_raises(self):
        inverted = InvertedBitVectorFile(bits=256)
        inverted.add(7, 1)
        with pytest.raises(UnknownGeneError):
            inverted.remove_source(2, [7])
        with pytest.raises(UnknownGeneError):
            inverted.remove_source(1, [9])

    def test_shared_hash_bit_survives_other_source(self):
        """Removing one source never hides another source that happens to
        share the same signature bit (rebuild-from-exact semantics)."""
        from repro.index.invertedfile import SOURCE_SALT
        from repro.index.bitvector import signature as sig

        inverted = InvertedBitVectorFile(bits=8)  # force collisions
        for source in range(20):
            inverted.add(3, source)
        inverted.remove_source(5, [3])
        combined = inverted.sources_signature(3)
        for source in inverted.sources_of(3):
            assert signatures_overlap(sig(source, 8, SOURCE_SALT), combined)
