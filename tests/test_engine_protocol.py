"""The unified engine API: QueryEngine protocol conformance, the
keyword-only threshold shim, registry-sourced stats, and the
`edge_probability` dispatcher with its deprecated aliases."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    BaselineEngine,
    EngineConfig,
    IMGRNEngine,
    IMGRNResult,
    LinearScanEngine,
    MeasureScanEngine,
    ObservabilityConfig,
    QueryEngine,
    edge_probability,
    edge_probability_correlation,
    edge_probability_distance,
    edge_probability_exact,
    edge_probability_matrix,
)
from repro.core.inference import (
    _correlation_probability,
    _distance_probability,
    _exact_probability,
    _matrix_probability,
)
from repro.errors import ValidationError

GAMMA, ALPHA = 0.5, 0.3

#: Private registries keep protocol tests independent of suite ordering.
PROTOCOL_CONFIG = EngineConfig(
    mc_samples=64,
    seed=11,
    observability=ObservabilityConfig(shared_registry=False),
)


def _engine_factories():
    return [
        ("imgrn", lambda db: IMGRNEngine(db, PROTOCOL_CONFIG)),
        ("baseline", lambda db: BaselineEngine(db, PROTOCOL_CONFIG)),
        ("linear_scan", lambda db: LinearScanEngine(db, PROTOCOL_CONFIG)),
        (
            "measure_scan",
            lambda db: MeasureScanEngine(db, config=PROTOCOL_CONFIG),
        ),
    ]


@pytest.mark.parametrize(
    "name,factory", _engine_factories(), ids=lambda p: p if isinstance(p, str) else ""
)
class TestQueryEngineProtocol:
    def test_conforms_structurally(self, small_database, name, factory):
        engine = factory(small_database)
        assert isinstance(engine, QueryEngine)

    def test_build_then_keyword_query(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        assert not engine.is_built
        build_seconds = engine.build()
        assert engine.is_built
        assert isinstance(build_seconds, float) and build_seconds >= 0.0
        result = engine.query(query_workload[0], gamma=GAMMA, alpha=ALPHA)
        assert isinstance(result, IMGRNResult)
        assert result.stats.io_accesses >= 0
        assert result.stats.candidates >= len(result.answers)

    def test_positional_thresholds_deprecated_but_equivalent(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        query = query_workload[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            keyword = engine.query(query, gamma=GAMMA, alpha=ALPHA)
        with pytest.warns(DeprecationWarning, match="positionally"):
            positional = engine.query(query, GAMMA, ALPHA)
        assert positional.answer_sources() == keyword.answer_sources()

    def test_duplicate_thresholds_rejected(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                engine.query(query_workload[0], GAMMA, gamma=GAMMA, alpha=ALPHA)

    def test_stats_sourced_from_metrics_delta(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        result = engine.query(query_workload[0], gamma=GAMMA, alpha=ALPHA)
        assert result.metrics, "per-query metrics delta must be attached"
        label = f'engine="{name}"'
        io_key = f"query.io_accesses{{{label}}}"
        assert result.metrics[io_key] == float(result.stats.io_accesses)
        candidates_key = f"query.candidates{{{label}}}"
        assert result.metrics[candidates_key] == float(result.stats.candidates)
        assert result.metrics[f"query.count{{{label}}}"] == 1.0


class TestEdgeProbabilityDispatcher:
    @staticmethod
    def _pair(rng):
        return rng.normal(size=12), rng.normal(size=12)

    def test_distance_is_default(self, rng):
        x, y = self._pair(rng)
        assert edge_probability(
            x, y, n_samples=64, rng=np.random.default_rng(3)
        ) == _distance_probability(x, y, n_samples=64, rng=np.random.default_rng(3))

    def test_each_method_matches_private_impl(self, rng):
        x, y = self._pair(rng)
        assert edge_probability(
            x, y, method="correlation", n_samples=64, rng=np.random.default_rng(3)
        ) == _correlation_probability(
            x, y, n_samples=64, rng=np.random.default_rng(3)
        )
        x5, y5 = x[:5], y[:5]
        assert edge_probability(x5, y5, method="exact") == _exact_probability(x5, y5)
        matrix = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(
            edge_probability(matrix, method="matrix", n_samples=32, seed=5),
            _matrix_probability(matrix, n_samples=32, seed=5),
        )

    def test_method_validation(self, rng):
        x, y = self._pair(rng)
        with pytest.raises(ValidationError, match="method"):
            edge_probability(x, y, method="bogus")
        with pytest.raises(ValidationError, match="matrix"):
            edge_probability(x, y, method="matrix")
        with pytest.raises(ValidationError, match="both"):
            edge_probability(x, method="distance")

    def test_aliases_warn_and_delegate(self, rng):
        x, y = self._pair(rng)
        cases = [
            (edge_probability_distance, (x, y), {"n_samples": 32}),
            (edge_probability_correlation, (x, y), {"n_samples": 32}),
            (edge_probability_exact, (x[:5], y[:5]), {}),
            (edge_probability_matrix, (rng.normal(size=(8, 3)),), {"n_samples": 32}),
        ]
        for alias, args, kwargs in cases:
            with pytest.warns(DeprecationWarning, match="edge_probability"):
                value = alias(*args, **kwargs)
            assert value is not None
