"""The unified engine API: QueryEngine protocol conformance, the
typed-QuerySpec `execute()` workload suite (containment / topk /
similarity) across all four engines, registry-sourced stats, and the
`edge_probability` dispatcher with its deprecated aliases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BaselineEngine,
    EngineConfig,
    IMGRNEngine,
    IMGRNResult,
    LinearScanEngine,
    MeasureScanEngine,
    ObservabilityConfig,
    QueryEngine,
    QuerySpec,
    edge_probability,
    edge_probability_correlation,
    edge_probability_distance,
    edge_probability_exact,
    edge_probability_matrix,
)
from repro.core.inference import (
    _correlation_probability,
    _distance_probability,
    _exact_probability,
    _matrix_probability,
)
from repro.errors import ValidationError

GAMMA, ALPHA = 0.5, 0.3

#: Private registries keep protocol tests independent of suite ordering.
PROTOCOL_CONFIG = EngineConfig(
    mc_samples=64,
    seed=11,
    observability=ObservabilityConfig(shared_registry=False),
)


def _engine_factories():
    return [
        ("imgrn", lambda db: IMGRNEngine(db, PROTOCOL_CONFIG)),
        ("baseline", lambda db: BaselineEngine(db, PROTOCOL_CONFIG)),
        ("linear_scan", lambda db: LinearScanEngine(db, PROTOCOL_CONFIG)),
        (
            "measure_scan",
            lambda db: MeasureScanEngine(db, config=PROTOCOL_CONFIG),
        ),
    ]


def _answers(result: IMGRNResult) -> list[tuple[int, float]]:
    return [(a.source_id, a.probability) for a in result.answers]


def _pair_probability_fn(engine):
    """The engine's content-keyed edge-probability estimator."""
    inference = getattr(engine, "_inference", None)
    if inference is not None:
        return inference.pair_probability
    return engine._pair_probability


def _brute_force_similarity(
    engine, database, query_graph, gamma, alpha, edge_budget
) -> list[int]:
    """Reference enumeration: check every source directly, no pruning.

    A source answers iff it holds every query gene, at most
    ``edge_budget`` query edges have existence probability ``<= gamma``
    in its inferred GRN, and the product of the matched edges'
    probabilities exceeds ``alpha``. Probabilities come from the same
    content-keyed estimator the engines use, so the comparison is exact.
    """
    pair_probability = _pair_probability_fn(engine)
    answers = []
    for matrix in database:
        if any(g not in matrix for g in query_graph.gene_ids):
            continue
        probability, missing, matched = 1.0, 0, True
        for (u, v), _p in query_graph.edges():
            p = pair_probability(matrix.column(u), matrix.column(v))
            if p <= gamma:
                missing += 1
                if missing > edge_budget:
                    matched = False
                    break
                continue
            probability *= p
            if probability <= alpha:
                matched = False
                break
        if matched:
            answers.append(matrix.source_id)
    return answers


@pytest.mark.parametrize(
    "name,factory", _engine_factories(), ids=lambda p: p if isinstance(p, str) else ""
)
class TestQueryEngineProtocol:
    def test_conforms_structurally(self, small_database, name, factory):
        engine = factory(small_database)
        assert isinstance(engine, QueryEngine)

    def test_build_then_keyword_query(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        assert not engine.is_built
        build_seconds = engine.build()
        assert engine.is_built
        assert isinstance(build_seconds, float) and build_seconds >= 0.0
        result = engine.query(query_workload[0], gamma=GAMMA, alpha=ALPHA)
        assert isinstance(result, IMGRNResult)
        assert result.stats.io_accesses >= 0
        assert result.stats.candidates >= len(result.answers)

    def test_positional_thresholds_raise(
        self, small_database, query_workload, name, factory
    ):
        """The PR-3 DeprecationWarning shim completed its cycle."""
        engine = factory(small_database)
        engine.build()
        with pytest.raises(TypeError, match="positional"):
            engine.query(query_workload[0], GAMMA, ALPHA)
        with pytest.raises(TypeError, match="positional"):
            engine.query_topk(query_workload[0], GAMMA, 3)
        with pytest.raises(TypeError, match="gamma"):
            engine.query(query_workload[0])
        with pytest.raises(TypeError, match="gamma"):
            engine.query_topk(query_workload[0])

    def test_stats_sourced_from_metrics_delta(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        result = engine.query(query_workload[0], gamma=GAMMA, alpha=ALPHA)
        assert result.metrics, "per-query metrics delta must be attached"
        label = f'engine="{name}"'
        io_key = f"query.io_accesses{{{label}}}"
        assert result.metrics[io_key] == float(result.stats.io_accesses)
        candidates_key = f"query.candidates{{{label}}}"
        assert result.metrics[candidates_key] == float(result.stats.candidates)
        # Labels render alphabetically, so kind sorts after engine.
        count_key = f'query.count{{{label},kind="containment"}}'
        assert result.metrics[count_key] == 1.0

    # -- execute(spec) conformance, all three kinds --------------------
    def test_execute_requires_spec(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        with pytest.raises(ValidationError, match="QuerySpec"):
            engine.execute(query_workload[0])

    def test_execute_containment_matches_query(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        for query in query_workload[:2]:
            via_query = engine.query(query, gamma=GAMMA, alpha=ALPHA)
            via_spec = engine.execute(QuerySpec(query, GAMMA, ALPHA))
            assert _answers(via_spec) == _answers(via_query)

    def test_similarity_b0_bit_identical_to_containment(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        for query in query_workload[:3]:
            contain = engine.execute(QuerySpec(query, GAMMA, ALPHA))
            similar = engine.execute(
                QuerySpec(
                    query, GAMMA, ALPHA, kind="similarity", edge_budget=0
                )
            )
            assert _answers(similar) == _answers(contain)

    @pytest.mark.parametrize("budget", [0, 1, 2])
    def test_similarity_sound_vs_brute_force(
        self, small_database, query_workload, name, factory, budget
    ):
        """No false dismissals AND no spurious answers vs enumeration."""
        engine = factory(small_database)
        engine.build()
        for query in query_workload[:2]:
            result = engine.execute(
                QuerySpec(
                    query, GAMMA, ALPHA, kind="similarity", edge_budget=budget
                )
            )
            reference = _brute_force_similarity(
                engine,
                small_database,
                result.query_graph,
                GAMMA,
                ALPHA,
                budget,
            )
            assert result.answer_sources() == sorted(reference)

    def test_similarity_monotone_in_budget(
        self, small_database, query_workload, name, factory
    ):
        engine = factory(small_database)
        engine.build()
        query = query_workload[0]
        previous: set[int] = set()
        for budget in (0, 1, 2, 3):
            answers = set(
                engine.execute(
                    QuerySpec(
                        query,
                        GAMMA,
                        ALPHA,
                        kind="similarity",
                        edge_budget=budget,
                    )
                ).answer_sources()
            )
            assert previous <= answers
            previous = answers

    def test_topk_matches_posthoc_sort(
        self, small_database, query_workload, name, factory
    ):
        """Exactly the first k of the alpha=0 sort, ids and probabilities."""
        engine = factory(small_database)
        engine.build()
        for query in query_workload[:2]:
            unfiltered = engine.execute(QuerySpec(query, GAMMA, 0.0))
            reference = sorted(
                _answers(unfiltered), key=lambda sp: (-sp[1], sp[0])
            )
            for k in (1, 3, 10**6):
                topk = engine.execute(
                    QuerySpec(query, GAMMA, kind="topk", k=k)
                )
                assert _answers(topk) == reference[:k]

    def test_topk_refines_no_more_than_posthoc(
        self, small_database, query_workload, name, factory
    ):
        """Candidate counts never exceed the post-hoc path's (IMGRN also
        proves strict pruning via the topk_kth_bound counter elsewhere)."""
        engine = factory(small_database)
        engine.build()
        query = query_workload[0]
        posthoc = engine.execute(QuerySpec(query, GAMMA, 0.0))
        topk = engine.execute(QuerySpec(query, GAMMA, kind="topk", k=1))
        assert topk.stats.candidates <= posthoc.stats.candidates


class TestEdgeProbabilityDispatcher:
    @staticmethod
    def _pair(rng):
        return rng.normal(size=12), rng.normal(size=12)

    def test_distance_is_default(self, rng):
        x, y = self._pair(rng)
        assert edge_probability(
            x, y, n_samples=64, rng=np.random.default_rng(3)
        ) == _distance_probability(x, y, n_samples=64, rng=np.random.default_rng(3))

    def test_each_method_matches_private_impl(self, rng):
        x, y = self._pair(rng)
        assert edge_probability(
            x, y, method="correlation", n_samples=64, rng=np.random.default_rng(3)
        ) == _correlation_probability(
            x, y, n_samples=64, rng=np.random.default_rng(3)
        )
        x5, y5 = x[:5], y[:5]
        assert edge_probability(x5, y5, method="exact") == _exact_probability(x5, y5)
        matrix = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(
            edge_probability(matrix, method="matrix", n_samples=32, seed=5),
            _matrix_probability(matrix, n_samples=32, seed=5),
        )

    def test_method_validation(self, rng):
        x, y = self._pair(rng)
        with pytest.raises(ValidationError, match="method"):
            edge_probability(x, y, method="bogus")
        with pytest.raises(ValidationError, match="matrix"):
            edge_probability(x, y, method="matrix")
        with pytest.raises(ValidationError, match="both"):
            edge_probability(x, method="distance")

    def test_aliases_warn_and_delegate(self, rng):
        x, y = self._pair(rng)
        cases = [
            (edge_probability_distance, (x, y), {"n_samples": 32}),
            (edge_probability_correlation, (x, y), {"n_samples": 32}),
            (edge_probability_exact, (x[:5], y[:5]), {}),
            (edge_probability_matrix, (rng.normal(size=(8, 3)),), {"n_samples": 32}),
        ]
        for alias, args, kwargs in cases:
            with pytest.warns(DeprecationWarning, match="edge_probability"):
                value = alias(*args, **kwargs)
            assert value is not None
