"""Unit tests for minimum bounding rectangles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, ValidationError
from repro.index.mbr import MBR


def box(low, high):
    return MBR(np.asarray(low, dtype=float), np.asarray(high, dtype=float))


class TestConstruction:
    def test_from_point_degenerate(self):
        b = MBR.from_point(np.array([1.0, 2.0]))
        assert b.area() == 0.0
        assert b.contains_point(np.array([1.0, 2.0]))

    def test_from_points_tight(self, rng):
        pts = rng.normal(size=(20, 3))
        b = MBR.from_points(pts)
        np.testing.assert_allclose(b.low, pts.min(axis=0))
        np.testing.assert_allclose(b.high, pts.max(axis=0))

    def test_inverted_corners_rejected(self):
        with pytest.raises(ValidationError):
            box([1.0, 0.0], [0.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            MBR(np.zeros(2), np.zeros(3))

    def test_empty_points_rejected(self):
        with pytest.raises(ValidationError):
            MBR.from_points(np.empty((0, 2)))

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValidationError):
            MBR.union_of([])

    def test_nan_corners_rejected(self):
        with pytest.raises(ValidationError):
            box([0.0, np.nan], [1.0, 1.0])
        with pytest.raises(ValidationError):
            box([0.0, 0.0], [np.nan, 1.0])

    def test_all_nan_corners_rejected(self):
        # NaN must not slip through the low <= high comparison.
        with pytest.raises(ValidationError):
            box([np.nan, np.nan], [np.nan, np.nan])


class TestGeometry:
    def test_area_and_margin(self):
        b = box([0, 0], [2, 3])
        assert b.area() == 6.0
        assert b.margin() == 5.0

    def test_union_encloses_both(self):
        a = box([0, 0], [1, 1])
        b = box([2, 2], [3, 3])
        u = a.union(b)
        assert u.contains(a) and u.contains(b)
        assert u.area() == 9.0

    def test_extend_in_place(self):
        a = box([0, 0], [1, 1])
        a.extend(box([2, 2], [3, 3]))
        assert a.contains_point(np.array([3.0, 3.0]))

    def test_extend_point(self):
        a = box([0, 0], [1, 1])
        a.extend_point(np.array([-1.0, 0.5]))
        assert a.low[0] == -1.0

    def test_enlargement(self):
        a = box([0, 0], [1, 1])
        assert a.enlargement(box([0, 0], [1, 2])) == pytest.approx(1.0)
        assert a.enlargement(box([0.2, 0.2], [0.8, 0.8])) == 0.0

    def test_overlap(self):
        a = box([0, 0], [2, 2])
        assert a.overlap(box([1, 1], [3, 3])) == pytest.approx(1.0)
        assert a.overlap(box([5, 5], [6, 6])) == 0.0

    def test_overlap_symmetric(self, rng):
        for _ in range(10):
            lows = rng.normal(size=(2, 3))
            a = MBR(lows[0], lows[0] + rng.uniform(0.1, 2.0, 3))
            b = MBR(lows[1], lows[1] + rng.uniform(0.1, 2.0, 3))
            assert a.overlap(b) == pytest.approx(b.overlap(a))

    def test_intersects_touching_boxes(self):
        a = box([0, 0], [1, 1])
        b = box([1, 1], [2, 2])
        assert a.intersects(b)
        assert a.overlap(b) == 0.0  # touching has zero measure

    def test_containment(self):
        outer = box([0, 0], [10, 10])
        inner = box([1, 1], [2, 2])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_center_distance(self):
        a = box([0, 0], [2, 2])  # center (1,1)
        b = box([3, 1], [5, 1])  # center (4,1)
        assert a.center_distance(b) == pytest.approx(3.0)

    def test_copy_independent(self):
        a = box([0, 0], [1, 1])
        c = a.copy()
        c.extend_point(np.array([9.0, 9.0]))
        assert a.high[0] == 1.0

    def test_equality(self):
        assert box([0, 0], [1, 1]) == box([0, 0], [1, 1])
        assert box([0, 0], [1, 1]) != box([0, 0], [1, 2])

    def test_union_of_many(self, rng):
        boxes = [MBR.from_point(rng.normal(size=2)) for _ in range(8)]
        u = MBR.union_of(boxes)
        for b in boxes:
            assert u.contains(b)


class TestHighDimArea:
    """The underflow bug: tiny per-axis extents in high dim flush area to 0."""

    def test_area_underflows_where_log_area_does_not(self):
        # 200 axes of 1e-2 extent: true area 1e-400 is below the float64
        # denormal range, so area() underflows to exactly 0.0 ...
        dim = 200
        b = MBR(np.zeros(dim), np.full(dim, 1e-2))
        assert b.area() == 0.0
        # ... while log_area() stays finite and ordered.
        assert b.log_area() == pytest.approx(dim * np.log(1e-2))

    def test_log_area_orders_degenerate_free_boxes(self):
        dim = 150
        small = MBR(np.zeros(dim), np.full(dim, 1e-3))
        large = MBR(np.zeros(dim), np.full(dim, 2e-3))
        assert small.area() == large.area() == 0.0  # both underflow
        assert small.log_area() < large.log_area()

    def test_log_area_of_point_box_is_neg_inf(self):
        b = MBR.from_point(np.array([1.0, 2.0, 3.0]))
        assert b.log_area() == -np.inf
