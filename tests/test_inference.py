"""Unit tests for edge-probability estimation and GRN inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import (
    EdgeProbabilityEstimator,
    edge_probability_correlation,
    edge_probability_distance,
    edge_probability_exact,
    edge_probability_matrix,
    infer_grn,
    infer_grn_correlation,
    infer_grn_partial_correlation,
)
from repro.core.randomization import lemma2_sample_size
from repro.errors import ValidationError


def _correlated_pair(rng, length=20, noise=0.2):
    x = rng.normal(size=length)
    y = x + noise * rng.normal(size=length)
    return x, y


class TestEdgeProbabilityDistance:
    def test_in_unit_interval(self, rng):
        x, y = rng.normal(size=(2, 15))
        p = edge_probability_distance(x, y, n_samples=100, rng=rng)
        assert 0.0 <= p <= 1.0

    def test_high_for_correlated_pair(self, rng):
        x, y = _correlated_pair(rng, noise=0.1)
        p = edge_probability_distance(x, y, n_samples=300, rng=rng)
        assert p > 0.95

    def test_one_sided_low_for_anticorrelated_pair(self, rng):
        # Eq. 4 (one-sided) treats anti-correlation as a large distance.
        x = rng.normal(size=20)
        p = edge_probability_distance(x, -x, n_samples=300, rng=rng)
        assert p < 0.05

    def test_two_sided_high_for_anticorrelated_pair(self, rng):
        # Eq. 1 (absolute correlation) treats anti-correlation as an edge.
        x = rng.normal(size=20)
        p = edge_probability_distance(
            x, -x + 0.05 * rng.normal(size=20), n_samples=300, rng=rng,
            semantics="two_sided",
        )
        assert p > 0.95

    def test_near_half_for_independent_pair_one_sided(self, rng):
        # Under the null the one-sided p-value is uniform; averaged over
        # pairs it concentrates at 1/2.
        values = [
            edge_probability_distance(
                rng.normal(size=30), rng.normal(size=30), n_samples=200, rng=rng
            )
            for _ in range(40)
        ]
        assert 0.35 < float(np.mean(values)) < 0.65

    def test_matches_exact_enumeration(self, rng):
        x, y = rng.normal(size=(2, 6))
        exact = edge_probability_exact(x, y)
        mc = edge_probability_distance(x, y, n_samples=8000, rng=rng)
        assert mc == pytest.approx(exact, abs=0.03)

    def test_bad_semantics(self, rng):
        with pytest.raises(ValidationError):
            edge_probability_distance(
                np.ones(5) + np.arange(5), np.arange(5.0), semantics="bogus"
            )

    def test_bad_sample_count(self, rng):
        x, y = rng.normal(size=(2, 10))
        with pytest.raises(ValidationError):
            edge_probability_distance(x, y, n_samples=0)


class TestSemanticsEquivalence:
    def test_lemma1_regime_agreement(self, rng):
        """One- and two-sided forms agree when the observed dot dominates
        the permutation dots in absolute value (the App.-B regime)."""
        for _ in range(10):
            x, y = _correlated_pair(rng, length=6, noise=0.05)
            one = edge_probability_exact(x, y, semantics="one_sided")
            two = edge_probability_exact(x, y, semantics="two_sided")
            # For strongly positively correlated pairs the one-sided count
            # includes every two-sided hit plus permutations dominated on
            # the negative side, so one >= two always; with weak nulls the
            # two coincide.
            assert one >= two - 1e-12

    def test_correlation_form_matches_two_sided_distance_form(self, rng):
        """Eq. 1 computed literally (|Pearson|) equals the two-sided dot
        form on the same permutation stream's distribution (statistically)."""
        x, y = _correlated_pair(rng, length=16, noise=0.8)
        lit = edge_probability_correlation(
            x, y, n_samples=3000, rng=np.random.default_rng(1)
        )
        two = edge_probability_distance(
            x, y, n_samples=3000, rng=np.random.default_rng(2), semantics="two_sided"
        )
        assert lit == pytest.approx(two, abs=0.05)


class TestEstimator:
    def test_lemma2_resolution(self):
        est = EdgeProbabilityEstimator(n_samples=None, epsilon=0.1, delta=0.05)
        assert est.resolved_samples() == lemma2_sample_size(0.1, 0.05)

    def test_explicit_samples_win(self):
        assert EdgeProbabilityEstimator(n_samples=77).resolved_samples() == 77

    def test_pair_probability_deterministic(self, rng):
        est = EdgeProbabilityEstimator(n_samples=50, seed=3)
        x, y = rng.normal(size=(2, 12))
        assert est.pair_probability(x, y) == est.pair_probability(x, y)

    def test_pair_matches_matrix_path(self, rng):
        """The content-keyed streams make the single-pair estimate equal
        the all-pairs matrix entry for the same data."""
        est = EdgeProbabilityEstimator(n_samples=64, seed=5)
        m = rng.normal(size=(14, 6))
        probs = est.probability_matrix(m)
        for s in range(6):
            for t in range(s + 1, 6):
                pair = est.pair_probability(m[:, s], m[:, t])
                assert pair == pytest.approx(probs[s, t], abs=1e-12), (s, t)

    def test_exact_below_uses_enumeration(self, rng):
        est = EdgeProbabilityEstimator(exact_below=8, n_samples=5, seed=1)
        x, y = rng.normal(size=(2, 6))
        assert est.pair_probability(x, y) == pytest.approx(
            edge_probability_exact(x, y)
        )

    def test_invalid_semantics_rejected(self):
        with pytest.raises(ValidationError):
            EdgeProbabilityEstimator(semantics="middle_out")


class TestEdgeProbabilityMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        probs = edge_probability_matrix(rng.normal(size=(12, 5)), n_samples=50)
        np.testing.assert_allclose(probs, probs.T)
        np.testing.assert_allclose(np.diag(probs), 0.0)

    def test_values_in_unit_interval(self, rng):
        probs = edge_probability_matrix(rng.normal(size=(12, 5)), n_samples=50)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_column_position_invariance(self, rng):
        """Content-keyed streams: swapping unrelated columns does not
        change a pair's probability."""
        m = rng.normal(size=(10, 4))
        swapped = m[:, [0, 1, 3, 2]]
        a = edge_probability_matrix(m, n_samples=64, seed=9)
        b = edge_probability_matrix(swapped, n_samples=64, seed=9)
        assert a[0, 1] == pytest.approx(b[0, 1], abs=1e-12)


class TestInferGrn:
    def test_edges_respect_gamma(self, rng):
        m = rng.normal(size=(15, 6))
        est = EdgeProbabilityEstimator(n_samples=64, seed=2)
        graph = infer_grn(m, list(range(6)), gamma=0.5, estimator=est)
        probs = est.probability_matrix(m)
        for (u, v), p in graph.edges():
            assert p > 0.5
            assert p == pytest.approx(probs[u, v])
        # and nothing above gamma is missing
        for s in range(6):
            for t in range(s + 1, 6):
                if probs[s, t] > 0.5:
                    assert graph.has_edge(s, t)

    def test_higher_gamma_is_subset(self, rng):
        m = rng.normal(size=(15, 8))
        est = EdgeProbabilityEstimator(n_samples=64, seed=2)
        low = infer_grn(m, list(range(8)), gamma=0.3, estimator=est)
        high = infer_grn(m, list(range(8)), gamma=0.8, estimator=est)
        low_edges = {key for key, _ in low.edges()}
        high_edges = {key for key, _ in high.edges()}
        assert high_edges <= low_edges

    def test_gamma_domain(self, rng):
        with pytest.raises(ValidationError):
            infer_grn(rng.normal(size=(10, 3)), [0, 1, 2], gamma=1.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValidationError):
            infer_grn(rng.normal(size=(10, 3)), [0, 1], gamma=0.5)


class TestCompetitorInference:
    def test_correlation_graph_thresholds_abs_pearson(self, rng):
        x = rng.normal(size=30)
        m = np.column_stack([x, x + 0.05 * rng.normal(size=30), rng.normal(size=30)])
        graph = infer_grn_correlation(m, [10, 20, 30], threshold=0.8)
        assert graph.has_edge(10, 20)
        assert not graph.has_edge(10, 30)

    def test_partial_correlation_graph(self, rng):
        n = 2000
        x = rng.normal(size=n)
        y = x + 0.3 * rng.normal(size=n)
        z = y + 0.3 * rng.normal(size=n)
        graph = infer_grn_partial_correlation(
            np.column_stack([x, y, z]), [0, 1, 2], threshold=0.5, shrinkage=0.0
        )
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)  # indirect link suppressed

    def test_threshold_domain(self, rng):
        with pytest.raises(ValidationError):
            infer_grn_correlation(rng.normal(size=(10, 3)), [0, 1, 2], threshold=1.5)
