"""Tests for the batched/cached/parallel edge-probability engine.

The contract under test: every execution strategy -- scalar per-pair,
batched matrix, pair blocks, cached, multi-process -- returns *identical*
probabilities for the same data and estimator parameters. That is what
makes batching safe to wire through every engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import InferenceConfig
from repro.core.batch_inference import (
    BatchInferenceEngine,
    EdgeProbabilityCache,
    batched_probability_matrix,
    standardize_columns,
)
from repro.core.inference import (
    EdgeProbabilityEstimator,
    edge_probability_matrix,
    infer_grn,
)
from repro.core.standardize import standardize_vector
from repro.errors import DimensionMismatchError, ValidationError


@pytest.fixture()
def matrix(rng) -> np.ndarray:
    """A 14-sample x 9-gene matrix with a mix of correlated columns."""
    m = rng.normal(size=(14, 9))
    m[:, 1] = m[:, 0] + 0.4 * rng.normal(size=14)
    m[:, 5] = -m[:, 2] + 0.3 * rng.normal(size=14)
    return m


def scalar_reference(matrix: np.ndarray, estimator) -> np.ndarray:
    """The per-pair sequential loop the batched paths must reproduce."""
    n = matrix.shape[1]
    probs = np.zeros((n, n), dtype=np.float64)
    for s in range(n):
        for t in range(s + 1, n):
            probs[s, t] = estimator.pair_probability(matrix[:, s], matrix[:, t])
    probs += probs.T
    return probs


class TestStandardizeColumns:
    def test_matches_per_column_standardize(self, rng):
        m = rng.normal(size=(11, 5))
        std = standardize_columns(m)
        for j in range(5):
            assert np.array_equal(std[:, j], standardize_vector(m[:, j]))

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionMismatchError):
            standardize_columns(np.arange(6.0))


class TestBitIdentity:
    """Batched == scalar, bit for bit, under a fixed seed."""

    def test_matrix_equals_scalar_loop(self, matrix):
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        batched = estimator.probability_matrix(matrix)
        assert np.array_equal(batched, scalar_reference(matrix, estimator))

    def test_two_sided_matrix_equals_scalar_loop(self, matrix):
        estimator = EdgeProbabilityEstimator(
            n_samples=64, seed=5, semantics="two_sided"
        )
        batched = estimator.probability_matrix(matrix)
        assert np.array_equal(batched, scalar_reference(matrix, estimator))

    @pytest.mark.parametrize("batch_size", [1, 3, 64])
    def test_batch_size_invariance(self, matrix, batch_size):
        reference = edge_probability_matrix(matrix, n_samples=64, seed=5)
        varied = edge_probability_matrix(
            matrix, n_samples=64, seed=5, batch_size=batch_size
        )
        assert np.array_equal(varied, reference)

    def test_workers_invariance(self, matrix):
        reference = edge_probability_matrix(matrix, n_samples=64, seed=5)
        parallel = edge_probability_matrix(
            matrix, n_samples=64, seed=5, workers=2
        )
        assert np.array_equal(parallel, reference)

    def test_pair_blocks_equal_scalar(self, matrix):
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        engine = BatchInferenceEngine(estimator, InferenceConfig())
        std = standardize_columns(matrix)
        pairs = [(0, 1), (2, 5), (0, 8), (3, 4)]
        probs = engine.pair_block_probabilities(std, pairs, raw=matrix)
        for s, t in pairs:
            assert probs[(s, t)] == estimator.pair_probability(
                matrix[:, s], matrix[:, t]
            )

    def test_cache_off_equals_cache_on(self, matrix):
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        cached = BatchInferenceEngine(estimator, InferenceConfig(cache=True))
        uncached = BatchInferenceEngine(estimator, InferenceConfig(cache=False))
        assert np.array_equal(
            cached.probability_matrix(matrix), uncached.probability_matrix(matrix)
        )

    def test_exact_regime_matches_estimator(self, rng):
        # l <= exact_below: the engine must delegate to exact enumeration.
        m = rng.normal(size=(5, 4))
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5, exact_below=6)
        engine = BatchInferenceEngine(estimator, InferenceConfig())
        std = standardize_columns(m)
        pairs = [(0, 1), (1, 3)]
        probs = engine.pair_block_probabilities(std, pairs, raw=m)
        for s, t in pairs:
            assert probs[(s, t)] == estimator.pair_probability(m[:, s], m[:, t])
            assert engine.pair_probability(m[:, s], m[:, t]) == probs[(s, t)]


class TestCache:
    def test_hits_after_matrix_computation(self, matrix):
        engine = BatchInferenceEngine(
            EdgeProbabilityEstimator(n_samples=64, seed=5), InferenceConfig()
        )
        reference = engine.probability_matrix(matrix)
        before = engine.stats()["cache_hits"]
        # Single-pair lookups now hit the per-pair entries.
        p = engine.pair_probability(matrix[:, 0], matrix[:, 1])
        assert p == reference[0, 1]
        assert engine.stats()["cache_hits"] == before + 1

    def test_matrix_memo_hit(self, matrix):
        engine = BatchInferenceEngine(
            EdgeProbabilityEstimator(n_samples=64, seed=5), InferenceConfig()
        )
        first = engine.probability_matrix(matrix)
        hits_before = engine.stats()["cache_hits"]
        second = engine.probability_matrix(matrix)
        assert np.array_equal(first, second)
        assert engine.stats()["cache_hits"] == hits_before + 1

    def test_different_params_do_not_collide(self, matrix):
        cache = EdgeProbabilityCache()
        e64 = BatchInferenceEngine(
            EdgeProbabilityEstimator(n_samples=64, seed=5),
            InferenceConfig(),
            cache=cache,
        )
        e32 = BatchInferenceEngine(
            EdgeProbabilityEstimator(n_samples=32, seed=5),
            InferenceConfig(),
            cache=cache,
        )
        p64 = e64.pair_probability(matrix[:, 0], matrix[:, 1])
        p32 = e32.pair_probability(matrix[:, 0], matrix[:, 1])
        # Same pair, shared cache, different sample counts: the second
        # engine must not read the first engine's entry.
        assert p64 == EdgeProbabilityEstimator(n_samples=64, seed=5).pair_probability(
            matrix[:, 0], matrix[:, 1]
        )
        assert p32 == EdgeProbabilityEstimator(n_samples=32, seed=5).pair_probability(
            matrix[:, 0], matrix[:, 1]
        )

    def test_lru_eviction(self):
        cache = EdgeProbabilityCache(max_entries=2)
        cache.put(("a",), 1.0)
        cache.put(("b",), 2.0)
        assert cache.get(("a",)) == 1.0  # refresh "a"
        cache.put(("c",), 3.0)  # evicts "b", the least recently used
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1.0
        assert cache.get(("c",)) == 3.0
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = EdgeProbabilityCache()
        cache.put(("k",), 0.5)
        cache.get(("k",))
        cache.get(("missing",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "cache_entries": 0.0,
            "cache_hits": 0.0,
            "cache_misses": 0.0,
        }

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValidationError):
            EdgeProbabilityCache(max_entries=0)


class TestDeterminism:
    def test_same_seed_identical_probabilistic_graph(self, matrix):
        ids = list(range(100, 100 + matrix.shape[1]))
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        config = InferenceConfig(batch_size=4)
        g1 = infer_grn(matrix, ids, gamma=0.3, estimator=estimator,
                       inference=config)
        g2 = infer_grn(matrix, ids, gamma=0.3, estimator=estimator,
                       inference=config)
        assert g1.gene_ids == g2.gene_ids
        assert dict(g1.edges()) == dict(g2.edges())

    def test_batch_knobs_do_not_change_graph(self, matrix):
        ids = list(range(matrix.shape[1]))
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        small = infer_grn(matrix, ids, gamma=0.3, estimator=estimator,
                          inference=InferenceConfig(batch_size=1))
        large = infer_grn(matrix, ids, gamma=0.3, estimator=estimator,
                          inference=InferenceConfig(batch_size=64))
        assert dict(small.edges()) == dict(large.edges())

    def test_evaluation_order_independence(self, matrix):
        estimator = EdgeProbabilityEstimator(n_samples=64, seed=5)
        engine = BatchInferenceEngine(estimator, InferenceConfig(cache=False))
        std = standardize_columns(matrix)
        forward = engine.pair_block_probabilities(std, [(0, 3), (1, 3), (2, 3)])
        backward = engine.pair_block_probabilities(std, [(2, 3), (1, 3), (0, 3)])
        assert forward == backward


class TestSemanticsEquivalence:
    """one_sided and two_sided coincide on non-negatively correlated pairs.

    For ``r(X_s, X_t) >= 0`` and a permuted sample with
    ``|r_sampled| < r_observed``, both semantics count the same events up
    to the sign of the sampled score; on strongly positively correlated
    pairs the estimates agree closely (the docstring's claimed regime).
    """

    def test_agree_on_positively_correlated_pair(self, rng):
        x = rng.normal(size=40)
        y = x + 0.15 * rng.normal(size=40)
        one = EdgeProbabilityEstimator(
            n_samples=400, seed=5, semantics="one_sided"
        ).pair_probability(x, y)
        two = EdgeProbabilityEstimator(
            n_samples=400, seed=5, semantics="two_sided"
        ).pair_probability(x, y)
        assert one == pytest.approx(two, abs=0.05)
        assert one > 0.9 and two > 0.9

    def test_agree_across_positive_pairs(self, rng):
        for _ in range(5):
            x = rng.normal(size=36)
            y = 0.8 * x + 0.2 * rng.normal(size=36)
            one = EdgeProbabilityEstimator(
                n_samples=300, seed=7, semantics="one_sided"
            ).pair_probability(x, y)
            two = EdgeProbabilityEstimator(
                n_samples=300, seed=7, semantics="two_sided"
            ).pair_probability(x, y)
            assert one == pytest.approx(two, abs=0.06)


class TestValidation:
    def test_bad_batch_size_rejected(self, matrix):
        with pytest.raises(ValidationError):
            edge_probability_matrix(matrix, n_samples=16, batch_size=0)

    def test_bad_config_values_rejected(self):
        with pytest.raises(ValidationError):
            InferenceConfig(batch_size=0)
        with pytest.raises(ValidationError):
            InferenceConfig(workers=-1)
        with pytest.raises(ValidationError):
            InferenceConfig(cache_size=0)

    def test_config_with_copies(self):
        config = InferenceConfig()
        tuned = config.with_(batch_size=8, workers=2)
        assert tuned.batch_size == 8
        assert tuned.workers == 2
        assert config.batch_size == 32  # original untouched

    def test_non_2d_matrix_rejected(self):
        with pytest.raises(DimensionMismatchError):
            batched_probability_matrix(np.arange(8.0), n_samples=16)
