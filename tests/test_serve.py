"""Concurrent query-serving layer: correctness under threads.

The stress test is the PR's acceptance gate: an N-thread
:class:`~repro.serve.QueryServer` batch must return answers and
per-query count stats bit-identical to the serial engine. CI runs this
file with ``PYTHONFAULTHANDLER=1`` and ``IMGRN_STRESS_THREADS=8``.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import (
    IMGRNResult,
    QueryServer,
    QuerySpec,
    ServeConfig,
    TransientError,
    ValidationError,
)
from repro.core.query import IMGRNEngine
from repro.eval.counters import QueryStats
from repro.obs import names as _names
from repro.serve.server import ResultCache

STRESS_THREADS = int(os.environ.get("IMGRN_STRESS_THREADS", "8"))

#: Count fields of QueryStats that must be exact under concurrency
#: (timing fields are wall-clock and legitimately vary).
COUNT_FIELDS = ("io_accesses", "candidates", "answers", "pruned_pairs")


def make_specs(query_workload, gammas=(0.3, 0.5, 0.7)):
    return [
        QuerySpec(matrix, gamma, 0.2)
        for matrix in query_workload
        for gamma in gammas
    ]


class TestStressBitIdentity:
    def test_concurrent_batch_matches_serial(
        self, built_engine: IMGRNEngine, query_workload
    ):
        """N threads x full workload: answers + count stats bit-identical."""
        specs = make_specs(query_workload)
        serial = [
            built_engine.query(s.matrix, gamma=s.gamma, alpha=s.alpha)
            for s in specs
        ]
        with QueryServer(
            built_engine,
            ServeConfig(max_workers=STRESS_THREADS, cache=False),
        ) as server:
            outcomes = server.batch(specs)
        assert [o.index for o in outcomes] == list(range(len(specs)))
        for outcome, reference in zip(outcomes, serial):
            assert outcome.status == "ok"
            result = outcome.result
            assert result.answer_sources() == reference.answer_sources()
            assert [a.probability for a in result.answers] == [
                a.probability for a in reference.answers
            ]
            assert sorted(result.query_graph.edges()) == sorted(
                reference.query_graph.edges()
            )
            for field in COUNT_FIELDS:
                assert getattr(result.stats, field) == getattr(
                    reference.stats, field
                ), field

    def test_stats_exact_under_repeated_concurrency(
        self, built_engine: IMGRNEngine, query_workload
    ):
        """Per-query metrics deltas stay exact across repeated rounds."""
        specs = make_specs(query_workload, gammas=(0.5,))
        reference = [
            built_engine.query(s.matrix, gamma=s.gamma, alpha=s.alpha)
            for s in specs
        ]
        with QueryServer(
            built_engine,
            ServeConfig(max_workers=STRESS_THREADS, cache=False),
        ) as server:
            for _round in range(3):
                for outcome, ref in zip(server.batch(specs), reference):
                    stats = QueryStats.from_metrics(outcome.result.metrics)
                    for field in COUNT_FIELDS:
                        assert getattr(stats, field) == getattr(
                            ref.stats, field
                        )


class TestCache:
    def test_second_batch_hits_cache(self, built_engine, query_workload):
        specs = make_specs(query_workload, gammas=(0.5,))
        with QueryServer(built_engine, ServeConfig(max_workers=4)) as server:
            first = server.batch(specs)
            second = server.batch(specs)
            assert all(o.status == "ok" for o in first)
            assert all(o.status == "cached" for o in second)
            assert server.stats()["cache_hits"] == len(specs)
            for a, b in zip(first, second):
                assert a.result.answer_sources() == b.result.answer_sources()
                for field in COUNT_FIELDS:
                    assert getattr(a.result.stats, field) == getattr(
                        b.result.stats, field
                    )

    def test_cache_hit_is_isolated_copy(self, built_engine, query_workload):
        """Mutating a served result must not corrupt the cached original."""
        spec = QuerySpec(query_workload[0], 0.3, 0.0)
        reference = built_engine.query(
            spec.matrix, gamma=spec.gamma, alpha=spec.alpha
        )
        with QueryServer(built_engine, ServeConfig(max_workers=2)) as server:
            first = server.batch([spec])[0]
            first.result.answers.clear()
            first.result.stats.answers = -1
            second = server.batch([spec])[0]
            assert second.status == "cached"
            assert second.result.answer_sources() == reference.answer_sources()
            assert second.result.stats.answers == reference.stats.answers

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        results = {
            name: IMGRNResult(None, [], QueryStats()) for name in "abc"
        }
        cache.put(("a",), results["a"])
        cache.put(("b",), results["b"])
        assert cache.get(("a",)) is not None  # touches "a"
        cache.put(("c",), results["c"])  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None

    def test_distinct_thresholds_are_distinct_entries(
        self, built_engine, query_workload
    ):
        matrix = query_workload[0]
        with QueryServer(built_engine, ServeConfig(max_workers=2)) as server:
            a = server.query(matrix, gamma=0.3, alpha=0.1)
            b = server.query(matrix, gamma=0.7, alpha=0.1)
            assert a.status == "ok" and b.status == "ok"
            assert server.stats()["cache_entries"] == 2


class _SleepyEngine:
    """Stub engine: sleeps, then fails transiently N times before passing."""

    def __init__(self, sleep_seconds=0.0, fail_times=0, exc=TransientError):
        self.sleep_seconds = sleep_seconds
        self.fail_times = fail_times
        self.exc = exc
        self.calls = 0
        self._lock = threading.Lock()

    is_built = True

    def build(self) -> float:
        return 0.0

    def query(self, matrix, *, gamma, alpha) -> IMGRNResult:
        with self._lock:
            self.calls += 1
            remaining = self.fail_times
            if remaining > 0:
                self.fail_times -= 1
        if self.sleep_seconds:
            time.sleep(self.sleep_seconds)
        if remaining > 0:
            raise self.exc("flaky backend")
        return IMGRNResult(None, [], QueryStats(answers=0))

    def execute(self, spec: QuerySpec) -> IMGRNResult:
        return self.query(spec.matrix, gamma=spec.gamma, alpha=spec.alpha)


class TestDegradation:
    def test_timeout_yields_structured_outcome(self, query_workload):
        engine = _SleepyEngine(sleep_seconds=0.5)
        config = ServeConfig(max_workers=2, timeout_seconds=0.05)
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert outcome.status == "timeout"
        assert not outcome.ok
        assert outcome.result is None
        assert "deadline" in outcome.error
        assert outcome.seconds >= 0.05
        assert outcome.answer_sources() == []

    def test_timeout_does_not_poison_batch(self, built_engine, query_workload):
        """A stuck query degrades alone; real queries still serve."""
        sleepy = _SleepyEngine(sleep_seconds=0.5)

        class _Hybrid:
            obs = built_engine.obs

            def execute(self, spec):
                if spec.gamma > 0.8:  # the poisoned spec
                    return sleepy.execute(spec)
                return built_engine.execute(spec)

        specs = [
            QuerySpec(query_workload[0], 0.5, 0.2),
            QuerySpec(query_workload[1], 0.9, 0.2),
            QuerySpec(query_workload[2], 0.5, 0.2),
        ]
        config = ServeConfig(max_workers=3, timeout_seconds=0.2, cache=False)
        with QueryServer(_Hybrid(), config) as server:
            outcomes = server.batch(specs)
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]

    def test_transient_failure_retries_then_succeeds(self, query_workload):
        engine = _SleepyEngine(fail_times=2)
        config = ServeConfig(
            max_workers=1, max_retries=2, backoff_seconds=0.001
        )
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert engine.calls == 3

    def test_retry_exhaustion_degrades(self, query_workload):
        engine = _SleepyEngine(fail_times=10)
        config = ServeConfig(
            max_workers=1, max_retries=2, backoff_seconds=0.001
        )
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert outcome.status == "error"
        assert "retries exhausted" in outcome.error
        assert outcome.attempts == 3
        assert engine.calls == 3  # max_retries + 1, bounded

    def test_non_transient_error_fails_fast(self, query_workload):
        engine = _SleepyEngine(fail_times=5, exc=RuntimeError)
        config = ServeConfig(
            max_workers=1, max_retries=3, backoff_seconds=0.001
        )
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert outcome.status == "error"
        assert outcome.attempts == 1
        assert engine.calls == 1

    def test_configurable_transient_types(self, query_workload):
        engine = _SleepyEngine(fail_times=1, exc=OSError)
        config = ServeConfig(
            max_workers=1,
            max_retries=1,
            backoff_seconds=0.001,
            transient_errors=(OSError,),
        )
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        assert outcome.status == "ok"
        assert outcome.attempts == 2

    def test_retry_backoff_capped_at_deadline(self, query_workload):
        """A backoff sleep must never run past the per-query deadline.

        With a 10 s configured backoff and a ~0.3 s deadline, the old
        (uncapped) sleep made the worker thread doze for the full 10 s,
        stalling close(). The cap bounds each pause by the remaining
        budget, so the whole round trip -- including the context-manager
        exit that joins the pool -- completes in well under the
        configured backoff.
        """
        engine = _SleepyEngine(fail_times=5)
        config = ServeConfig(
            max_workers=1,
            max_retries=3,
            backoff_seconds=10.0,
            timeout_seconds=0.3,
        )
        started = time.perf_counter()
        with QueryServer(engine, config) as server:
            outcome = server.query(query_workload[0], gamma=0.5, alpha=0.2)
        elapsed = time.perf_counter() - started
        assert outcome.status == "timeout"
        assert not outcome.ok
        assert elapsed < 2.0, f"backoff slept past the deadline: {elapsed:.2f}s"


class TestValidation:
    def test_invalid_thresholds_rejected_at_spec_construction(
        self, query_workload
    ):
        """A QuerySpec validates eagerly: bad thresholds can never reach
        a server, an engine, or the daemon."""
        with pytest.raises(ValidationError, match="gamma"):
            QuerySpec(query_workload[0], 1.5, 0.2)
        with pytest.raises(ValidationError, match="alpha"):
            QuerySpec(query_workload[0], 0.5, -0.1)
        with pytest.raises(ValidationError, match="k"):
            QuerySpec(query_workload[0], 0.5, kind="topk", k=0)
        with pytest.raises(ValidationError, match="edge_budget"):
            QuerySpec(
                query_workload[0], 0.5, 0.2, kind="similarity", edge_budget=-1
            )
        with pytest.raises(ValidationError, match="kind"):
            QuerySpec(query_workload[0], 0.5, 0.2, kind="regex")

    def test_one_bad_item_fails_whole_batch_upfront(
        self, built_engine, query_workload
    ):
        """Non-spec items are rejected before anything is dispatched."""
        specs = [
            QuerySpec(query_workload[0], 0.5, 0.2),
            query_workload[1],  # a raw matrix, not a QuerySpec
        ]
        with QueryServer(built_engine, ServeConfig(max_workers=1)) as server:
            mark = built_engine.obs.metrics.mark()
            with pytest.raises(ValidationError, match="QuerySpec"):
                server.batch(specs)
            # Nothing was served: the serve.queries counters never moved.
            delta = built_engine.obs.metrics.since(mark)
            assert not any(
                key.startswith(_names.SERVE_QUERIES) and value
                for key, value in delta.items()
            )

    def test_closed_server_rejects_batches(self, built_engine, query_workload):
        server = QueryServer(built_engine, ServeConfig(max_workers=1))
        server.close()
        with pytest.raises(ValidationError, match="closed"):
            server.batch([QuerySpec(query_workload[0], 0.5, 0.2)])

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            ServeConfig(max_workers=0)
        with pytest.raises(ValidationError):
            ServeConfig(timeout_seconds=0.0)
        with pytest.raises(ValidationError):
            ServeConfig(max_retries=-1)
        with pytest.raises(ValidationError):
            ServeConfig(backoff_multiplier=0.5)


class TestEngineValidation:
    """Satellite 1: gamma domain enforced uniformly across engines."""

    @pytest.mark.parametrize("gamma", [-0.1, 1.0, 1.5])
    def test_imgrn_rejects_out_of_range_gamma(
        self, built_engine, query_workload, gamma
    ):
        with pytest.raises(ValidationError, match="gamma"):
            built_engine.query(query_workload[0], gamma=gamma, alpha=0.2)

    @pytest.mark.parametrize("engine_name", ["baseline", "linear", "measure"])
    def test_scan_engines_reject_out_of_range_gamma(
        self, small_database, query_workload, engine_name
    ):
        from repro import (
            BaselineEngine,
            EngineConfig,
            LinearScanEngine,
            MeasureScanEngine,
        )

        cls = {
            "baseline": BaselineEngine,
            "linear": LinearScanEngine,
            "measure": MeasureScanEngine,
        }[engine_name]
        engine = cls(small_database, config=EngineConfig(mc_samples=16, seed=11))
        engine.build()
        with pytest.raises(ValidationError, match="gamma"):
            engine.query(query_workload[0], gamma=1.2, alpha=0.2)


class TestTopkWrapper:
    def test_positional_topk_raises(self, built_engine, query_workload):
        """The PR-3 deprecation shim completed its cycle: positional
        thresholds now raise instead of warning."""
        with pytest.raises(TypeError, match="positional"):
            built_engine.query_topk(query_workload[0], 0.5, 2)
        with pytest.raises(TypeError):
            built_engine.query_topk(query_workload[0])

    def test_keyword_topk_matches_spec_execute(
        self, built_engine, query_workload
    ):
        query = query_workload[0]
        keyword = built_engine.query_topk(query, gamma=0.5, k=2)
        via_spec = built_engine.execute(
            QuerySpec(query, 0.5, kind="topk", k=2)
        )
        assert keyword.answer_sources() == via_spec.answer_sources()

    def test_topk_gamma_validated(self, built_engine, query_workload):
        with pytest.raises(ValidationError, match="gamma"):
            built_engine.query_topk(query_workload[0], gamma=1.5, k=2)


class TestServeMetrics:
    def test_serve_series_recorded(self, built_engine, query_workload):
        specs = make_specs(query_workload, gammas=(0.4,))
        mark = built_engine.obs.metrics.mark()
        with QueryServer(built_engine, ServeConfig(max_workers=2)) as server:
            server.batch(specs)
            server.batch(specs)
        delta = built_engine.obs.metrics.since(mark)
        label = 'engine="imgrn"'
        ok_key = f'{_names.SERVE_QUERIES}{{{label},status="ok"}}'
        cached_key = f'{_names.SERVE_QUERIES}{{{label},status="cached"}}'
        assert delta[ok_key] == len(specs)
        assert delta[cached_key] == len(specs)
        assert delta[f"{_names.SERVE_CACHE_HITS}{{{label}}}"] == len(specs)
        assert delta[f"{_names.SERVE_CACHE_MISSES}{{{label}}}"] == len(specs)
        assert (
            delta[f"{_names.SERVE_QUERY_SECONDS}{{{label}}}_count"]
            == 2 * len(specs)
        )
        assert delta[f"{_names.SERVE_BATCH_SECONDS}{{{label}}}_count"] == 2

    def test_stream_yields_in_input_order(self, built_engine, query_workload):
        specs = make_specs(query_workload, gammas=(0.6,))
        with QueryServer(
            built_engine, ServeConfig(max_workers=4, cache=False)
        ) as server:
            indices = [o.index for o in server.stream(specs)]
        assert indices == list(range(len(specs)))


class TestServeCorrectnessFixes:
    """Regression tests for the daemon PR's serve-layer bugfixes."""

    def test_stream_submits_eagerly_without_consumption(self, query_workload):
        """stream() must dispatch the whole batch before any next().

        Regression: the old generator-bodied stream() submitted nothing
        until first iteration, so a caller that pipelined work before
        consuming outcomes got zero concurrency.
        """
        engine = _SleepyEngine()
        specs = [QuerySpec(m, 0.5, 0.5) for m in query_workload]
        with QueryServer(
            engine, ServeConfig(max_workers=len(specs), cache=False)
        ) as server:
            iterator = server.stream(specs)
            deadline = time.time() + 5.0
            while engine.calls < len(specs) and time.time() < deadline:
                time.sleep(0.01)
            # All queries executed although the iterator was never consumed.
            assert engine.calls == len(specs)
            outcomes = list(iterator)
        assert [o.index for o in outcomes] == list(range(len(specs)))
        assert all(o.status == "ok" for o in outcomes)

    def test_timeout_not_counted_as_cache_miss(self, query_workload):
        """A coordinator-side timeout never consulted the cache.

        Regression: _record treated every non-hit outcome as a cache
        miss, so serve.cache_misses drifted from ResultCache.misses
        whenever queries timed out or failed.
        """
        engine = _SleepyEngine(sleep_seconds=0.5)
        server = QueryServer(
            engine, ServeConfig(max_workers=1, timeout_seconds=0.05)
        )
        mark = server.obs.metrics.mark()
        spec = QuerySpec(query_workload[0], 0.5, 0.5)
        with server:
            (outcome,) = server.batch([spec])
            assert outcome.status == "timeout"
            time.sleep(0.8)  # let the abandoned worker finish
        delta = server.obs.metrics.since(mark)
        label = f'engine="{server.engine_label}"'
        miss_key = f"{_names.SERVE_CACHE_MISSES}{{{label}}}"
        # The worker DID consult the cache before computing (one genuine
        # miss); the coordinator's timeout accounting must not add one.
        assert delta.get(miss_key, 0.0) == server.cache.stats()["cache_misses"]
        timeout_key = f'{_names.SERVE_QUERIES}{{{label},status="timeout"}}'
        assert delta[timeout_key] == 1

    def test_late_completion_recorded_and_warms_cache(self, query_workload):
        """A worker finishing after its reported timeout is counted, and
        its result intentionally warms the cache for the next caller."""
        engine = _SleepyEngine(sleep_seconds=0.4)
        server = QueryServer(
            engine, ServeConfig(max_workers=1, timeout_seconds=0.05)
        )
        mark = server.obs.metrics.mark()
        spec = QuerySpec(query_workload[0], 0.5, 0.5)
        with server:
            (first,) = server.batch([spec])
            assert first.status == "timeout"
            deadline = time.time() + 5.0
            label = f'engine="{server.engine_label}"'
            late_key = (
                f'{_names.SERVE_LATE_COMPLETIONS}{{{label},status="ok"}}'
            )
            while (
                server.obs.metrics.since(mark).get(late_key, 0.0) < 1
                and time.time() < deadline
            ):
                time.sleep(0.02)
            assert server.obs.metrics.since(mark)[late_key] == 1
            # The late result landed in the cache: the retry is instant.
            (second,) = server.batch([spec], timeout=5.0)
        assert second.status == "cached"
        assert engine.calls == 1  # never recomputed
