"""Unit tests for vector/matrix standardization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.standardize import (
    is_standardized,
    standardize_matrix,
    standardize_vector,
    validate_same_length,
)
from repro.errors import DegenerateVectorError, DimensionMismatchError


class TestStandardizeVector:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(5.0, 3.0, size=40)
        z = standardize_vector(x)
        assert abs(z.mean()) < 1e-12
        assert abs(np.mean(z * z) - 1.0) < 1e-12

    def test_squared_norm_equals_length(self, rng):
        x = rng.normal(size=17)
        z = standardize_vector(x)
        assert float(z @ z) == pytest.approx(17.0)

    def test_idempotent(self, rng):
        z = standardize_vector(rng.normal(size=25))
        np.testing.assert_allclose(standardize_vector(z), z, atol=1e-12)

    def test_affine_invariance(self, rng):
        x = rng.normal(size=30)
        np.testing.assert_allclose(
            standardize_vector(3.5 * x + 11.0), standardize_vector(x), atol=1e-9
        )

    def test_negative_scale_flips_sign(self, rng):
        x = rng.normal(size=30)
        np.testing.assert_allclose(
            standardize_vector(-x), -standardize_vector(x), atol=1e-12
        )

    def test_constant_vector_rejected(self):
        with pytest.raises(DegenerateVectorError):
            standardize_vector(np.full(10, 3.0))

    def test_nan_rejected(self):
        x = np.array([1.0, 2.0, np.nan, 4.0])
        with pytest.raises(DegenerateVectorError):
            standardize_vector(x)

    def test_inf_rejected(self):
        x = np.array([1.0, np.inf, 3.0])
        with pytest.raises(DegenerateVectorError):
            standardize_vector(x)

    def test_2d_input_rejected(self):
        with pytest.raises(DimensionMismatchError):
            standardize_vector(np.ones((3, 3)))

    def test_single_element_rejected(self):
        with pytest.raises(DimensionMismatchError):
            standardize_vector(np.array([1.0]))

    def test_returns_float64(self):
        z = standardize_vector(np.array([1, 2, 3], dtype=np.int32))
        assert z.dtype == np.float64


class TestStandardizeMatrix:
    def test_columns_standardized(self, rng):
        m = rng.normal(2.0, 4.0, size=(12, 5))
        z = standardize_matrix(m)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.mean(z * z, axis=0), 1.0, atol=1e-12)

    def test_matches_per_column_vector_standardization(self, rng):
        m = rng.normal(size=(9, 4))
        z = standardize_matrix(m)
        for col in range(4):
            np.testing.assert_allclose(
                z[:, col], standardize_vector(m[:, col]), atol=1e-10
            )

    def test_constant_column_named_in_error(self, rng):
        m = rng.normal(size=(8, 3))
        m[:, 1] = 7.0
        with pytest.raises(DegenerateVectorError, match=r"\[1\]"):
            standardize_matrix(m)

    def test_single_row_rejected(self):
        with pytest.raises(DimensionMismatchError):
            standardize_matrix(np.ones((1, 4)))

    def test_1d_rejected(self):
        with pytest.raises(DimensionMismatchError):
            standardize_matrix(np.ones(5))

    def test_non_finite_rejected(self, rng):
        m = rng.normal(size=(6, 3))
        m[2, 2] = np.inf
        with pytest.raises(DegenerateVectorError):
            standardize_matrix(m)


class TestIsStandardized:
    def test_true_after_standardize(self, rng):
        assert is_standardized(standardize_vector(rng.normal(size=20)))

    def test_false_for_raw(self, rng):
        assert not is_standardized(rng.normal(10.0, 1.0, size=20))

    def test_false_for_scalar_like(self):
        assert not is_standardized(np.array([1.0]))


class TestValidateSameLength:
    def test_returns_length(self):
        assert validate_same_length(np.zeros(7), np.ones(7)) == 7

    def test_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            validate_same_length(np.zeros(3), np.zeros(4))

    def test_2d_raises(self):
        with pytest.raises(DimensionMismatchError):
            validate_same_length(np.zeros((2, 2)), np.zeros(4))
