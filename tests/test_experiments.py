"""Smoke tests for the per-figure experiment drivers (tiny scales).

Each driver runs on a deliberately small configuration: the goal here is
that every figure's code path executes end-to-end and returns well-formed
rows; the benchmark harness runs them at reporting scale.
"""

from __future__ import annotations

import pytest

from repro.eval import experiments
from repro.eval.reporting import format_roc_summary, format_table


@pytest.fixture(scope="module")
def tiny_kwargs():
    return {"n_matrices": 12, "num_queries": 2, "seed": 13}


class TestDatasets:
    def test_build_synthetic_workload(self):
        workload = experiments.build_synthetic_workload(
            weights="gau",
            n_matrices=8,
            genes_range=(8, 12),
            n_q=3,
            num_queries=2,
            seed=13,
        )
        assert len(workload.queries) == 2
        assert workload.engine.is_built

    def test_build_real_database(self):
        db = experiments.build_real_database(
            n_matrices=6, genes_range=(8, 12), samples_range=(6, 10), seed=13
        )
        assert len(db) == 6
        # At least some matrices inherit gold-standard edges.
        assert any(m.truth_edges for m in db)
        # Sub-matrices from the same organism share gene IDs.
        shared = [g for g in db.gene_ids() if len(db.sources_containing(g)) >= 2]
        assert shared


class TestRocDrivers:
    def test_roc_inference_curve_set(self):
        curves = experiments.roc_inference(
            organism="ecoli", genes=30, mc_samples=60, seed=13
        )
        assert set(curves) == {
            "imgrn",
            "correlation",
            "imgrn_noise",
            "correlation_noise",
        }
        for curve in curves.values():
            assert 0.0 <= curve.auc() <= 1.0
        summary = format_roc_summary(curves)
        assert "imgrn" in summary

    def test_roc_pcorr_curve_set(self):
        curves = experiments.roc_pcorr(
            organism="saureus", genes=30, mc_samples=60, seed=13
        )
        assert set(curves) == {"imgrn", "pcorr", "imgrn_noise", "pcorr_noise"}

    def test_unknown_organism(self):
        with pytest.raises(Exception):
            experiments.roc_inference(organism="tardigrade")


class TestEfficiencyDrivers:
    def test_inference_time_rows(self):
        result = experiments.inference_time(sizes=(20, 30), seed=13)
        assert [row["n_i"] for row in result.rows] == [20.0, 30.0]
        for row in result.rows:
            assert row["imgrn_seconds"] > row["correlation_seconds"]

    def test_vs_baseline_rows(self):
        result = experiments.vs_baseline(
            n_matrices=9,
            genes_range=(8, 12),
            n_q=3,
            num_queries=2,
            seed=13,
            include_linear_scan=True,
        )
        datasets = [row["dataset"] for row in result.rows]
        assert datasets == ["real", "uni", "gau"]
        for row in result.rows:
            assert row["imgrn_cpu"] > 0
            assert row["baseline_io"] >= 9  # one page per matrix minimum
            assert "scan_cpu" in row
        table = format_table(result)
        assert "baseline_io" in table

    def test_vary_gamma_rows(self, tiny_kwargs):
        result = experiments.vary_gamma(gammas=(0.3, 0.8), **tiny_kwargs)
        assert len(result.rows) == 4  # 2 gammas x {uni, gau}
        assert {row["dataset"] for row in result.rows} == {"uni", "gau"}

    def test_vary_alpha_rows(self, tiny_kwargs):
        result = experiments.vary_alpha(alphas=(0.2, 0.9), **tiny_kwargs)
        assert len(result.rows) == 4

    def test_vary_pivots_rows(self, tiny_kwargs):
        result = experiments.vary_pivots(pivot_counts=(1, 2), **tiny_kwargs)
        assert len(result.rows) == 4
        assert {row["d"] for row in result.rows} == {1.0, 2.0}

    def test_vary_query_size_rows(self, tiny_kwargs):
        result = experiments.vary_query_size(query_sizes=(2, 3), **tiny_kwargs)
        assert len(result.rows) == 4

    def test_vary_matrix_size_rows(self):
        result = experiments.vary_matrix_size(
            ranges=((8, 12), (12, 18)), n_matrices=10, num_queries=2, seed=13
        )
        assert len(result.rows) == 4
        assert result.rows[0]["n_range"] == "[8,12]"

    def test_vary_database_size_rows(self):
        result = experiments.vary_database_size(
            sizes=(6, 12), num_queries=2, seed=13
        )
        assert len(result.rows) == 4
        uni = [r for r in result.rows if r["dataset"] == "uni"]
        assert [r["N"] for r in uni] == [6.0, 12.0]

    def test_index_construction_rows(self):
        result = experiments.index_construction(
            ranges=((8, 12),), sizes=(6,), seed=13
        )
        # (1 range + 1 size) x 2 datasets
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["build_seconds"] > 0
            assert row["index_pages"] >= 1


class TestReporting:
    def test_format_table_alignment(self):
        result = experiments.ExperimentResult(
            name="demo",
            x_label="x",
            rows=[{"x": 1.0, "y": 0.5}, {"x": 2.0, "y": 0.25}],
        )
        table = format_table(result)
        lines = table.splitlines()
        assert lines[0] == "== demo =="
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        result = experiments.ExperimentResult(name="demo", x_label="x")
        assert "(no rows)" in format_table(result)

    def test_series_extraction(self):
        result = experiments.ExperimentResult(
            name="demo", x_label="x", rows=[{"x": 1.0}, {"x": 2.0}]
        )
        assert result.series("x") == [1.0, 2.0]
