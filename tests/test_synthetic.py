"""Unit tests for the Section-6.1 linear-model generator and organisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SyntheticConfig
from repro.data.noise import add_noise, add_noise_to_database
from repro.data.organisms import (
    ORGANISMS,
    OrganismSpec,
    generate_gold_standard,
    generate_organism_matrix,
)
from repro.data.synthetic import (
    generate_database,
    generate_expression,
    generate_matrix,
    generate_structure,
    generate_weights,
)
from repro.errors import ValidationError


class TestStructure:
    def test_no_self_loops(self, rng):
        mask = generate_structure(30, 1.0, rng)
        assert not np.any(np.diag(mask))

    def test_density_near_target(self, rng):
        masks = [
            generate_structure(100, 2.0, np.random.default_rng(s)) for s in range(10)
        ]
        avg_in_degree = float(np.mean([m.sum(axis=0).mean() for m in masks]))
        assert 1.5 < avg_in_degree < 2.5

    def test_domain(self, rng):
        with pytest.raises(ValidationError):
            generate_structure(1, 1.0, rng)
        with pytest.raises(ValidationError):
            generate_structure(10, 0.0, rng)


class TestWeights:
    def test_uni_magnitudes(self, rng):
        mask = generate_structure(40, 2.0, rng)
        b = generate_weights(mask, "uni", rng)
        nonzero = b[mask]
        assert np.all((np.abs(nonzero) >= 0.5) & (np.abs(nonzero) <= 1.0))
        assert np.all(b[~mask] == 0.0)

    def test_uni_has_both_signs(self, rng):
        mask = generate_structure(60, 3.0, rng)
        nonzero = generate_weights(mask, "uni", rng)[mask]
        assert np.any(nonzero > 0) and np.any(nonzero < 0)

    def test_gau_folded_into_ranges(self, rng):
        """Gau weights live in ~[-1,-0.5] u [0.5,1]: e' N(1,0.01) folded."""
        mask = generate_structure(80, 3.0, rng)
        nonzero = generate_weights(mask, "gau", rng)[mask]
        # values cluster near +1 or (rarely) fold to near -1
        assert np.all(np.abs(np.abs(nonzero) - 1.0) < 0.6)

    def test_bad_kind(self, rng):
        with pytest.raises(ValidationError):
            generate_weights(np.zeros((3, 3), dtype=bool), "exp", rng)


class TestExpression:
    def test_shape(self, rng):
        mask = generate_structure(20, 1.0, rng)
        b = generate_weights(mask, "uni", rng)
        m = generate_expression(b, 15, 0.01, rng)
        assert m.shape == (15, 20)

    def test_solves_linear_system(self, rng):
        """M (I - B) = E by construction: verify the residual is noise-like."""
        n = 10
        mask = generate_structure(n, 1.0, rng)
        b = generate_weights(mask, "uni", rng)
        m = generate_expression(b, 200, 0.01, np.random.default_rng(5))
        e = m @ (np.eye(n) - b)
        assert float(np.std(e)) == pytest.approx(0.1, rel=0.15)

    def test_truth_edges_show_higher_correlation(self):
        """Regulated pairs must correlate more than random pairs on average
        -- otherwise no inference method could recover the network."""
        config = SyntheticConfig(
            genes_range=(30, 30), samples_range=(60, 60), gene_pool=60, seed=1
        )
        matrix = generate_matrix(config, 0, np.random.default_rng(1))
        corr = np.abs(np.corrcoef(matrix.values.T))
        idx = {g: i for i, g in enumerate(matrix.gene_ids)}
        truth_vals = [corr[idx[u], idx[v]] for u, v in matrix.truth_edges]
        n = matrix.num_genes
        all_pairs = [
            corr[i, j] for i in range(n) for j in range(i + 1, n)
        ]
        assert np.mean(truth_vals) > np.mean(all_pairs) + 0.1

    def test_domain(self, rng):
        with pytest.raises(ValidationError):
            generate_expression(np.zeros((3, 3)), 2, 0.01, rng)
        with pytest.raises(ValidationError):
            generate_expression(np.zeros((3, 3)), 10, 0.0, rng)
        with pytest.raises(ValidationError):
            generate_expression(np.zeros((3, 4)), 10, 0.01, rng)


class TestGenerateDatabase:
    def test_sizes_within_config(self):
        config = SyntheticConfig(
            genes_range=(8, 12), samples_range=(6, 9), gene_pool=40, seed=2
        )
        db = generate_database(config, 10)
        assert len(db) == 10
        for m in db:
            assert 8 <= m.num_genes <= 12
            assert 6 <= m.num_samples <= 9
            assert all(0 <= g < 40 for g in m.gene_ids)

    def test_deterministic(self):
        config = SyntheticConfig(
            genes_range=(8, 12), samples_range=(6, 9), gene_pool=40, seed=2
        )
        a = generate_database(config, 5)
        b = generate_database(config, 5)
        for ma, mb in zip(a, b):
            np.testing.assert_array_equal(ma.values, mb.values)
            assert ma.gene_ids == mb.gene_ids

    def test_prefix_property(self):
        """Databases of different sizes share their common prefix."""
        config = SyntheticConfig(
            genes_range=(8, 12), samples_range=(6, 9), gene_pool=40, seed=2
        )
        small = generate_database(config, 3)
        large = generate_database(config, 6)
        for ms, ml in zip(small, large):
            np.testing.assert_array_equal(ms.values, ml.values)

    def test_gene_overlap_across_sources(self):
        config = SyntheticConfig(
            genes_range=(15, 20), samples_range=(6, 9), gene_pool=30, seed=2
        )
        db = generate_database(config, 8)
        shared = [
            g for g in db.gene_ids() if len(db.sources_containing(g)) >= 2
        ]
        assert len(shared) > 10  # overlap is what makes matching non-trivial

    def test_count_domain(self):
        with pytest.raises(ValidationError):
            generate_database(SyntheticConfig(), 0)


class TestOrganisms:
    def test_specs_registered(self):
        assert set(ORGANISMS) == {"ecoli", "saureus", "scerevisiae"}

    def test_scaled_keeps_density(self):
        spec = ORGANISMS["ecoli"].scaled(100)
        density = ORGANISMS["ecoli"].edges / ORGANISMS["ecoli"].genes
        assert spec.edges == pytest.approx(density * 100, abs=1.0)
        assert spec.genes == 100

    def test_gold_standard_size_and_validity(self, rng):
        edges = generate_gold_standard(50, 30, rng)
        assert len(edges) == 30
        assert all(0 <= u < 50 and 0 <= v < 50 and u != v for u, v in edges)
        # undirected-unique
        keys = {tuple(sorted(e)) for e in edges}
        assert len(keys) == 30

    def test_gold_standard_hub_structure(self, rng):
        edges = generate_gold_standard(100, 80, rng, regulator_fraction=0.1)
        out_degree: dict[int, int] = {}
        for reg, _t in edges:
            out_degree[reg] = out_degree.get(reg, 0) + 1
        assert max(out_degree.values()) >= 3  # hubs exist

    def test_matrix_has_truth_and_shape(self):
        spec = ORGANISMS["ecoli"].scaled(40)
        m = generate_organism_matrix(spec, rng=np.random.default_rng(0))
        assert m.num_genes == 40
        assert len(m.truth_edges) > 0

    def test_truth_edges_recoverable(self):
        """Gold edges correlate above background (the ROC's premise)."""
        spec = OrganismSpec(
            name="test", genes=40, samples=120, edges=20,
            paper_genes=40, paper_samples=120,
        )
        m = generate_organism_matrix(
            spec, rng=np.random.default_rng(3), noisy_gene_fraction=0.0
        )
        corr = np.abs(np.corrcoef(m.values.T))
        idx = {g: i for i, g in enumerate(m.gene_ids)}
        truth_vals = [corr[idx[u], idx[v]] for u, v in m.truth_edges]
        background = corr[np.triu_indices(40, k=1)]
        assert np.mean(truth_vals) > np.mean(background) + 0.1

    def test_gold_standard_domain(self, rng):
        with pytest.raises(ValidationError):
            generate_gold_standard(3, 1, rng)
        with pytest.raises(ValidationError):
            generate_gold_standard(10, 0, rng)
        with pytest.raises(ValidationError):
            generate_gold_standard(10, 100, rng)


class TestNoise:
    def test_noise_changes_values_preserves_labels(self, rng):
        config = SyntheticConfig(
            genes_range=(8, 10), samples_range=(6, 8), gene_pool=30, seed=4
        )
        m = generate_matrix(config, 0, rng)
        noisy = add_noise(m, 0.3, rng)
        assert noisy.gene_ids == m.gene_ids
        assert noisy.truth_edges == m.truth_edges
        assert not np.allclose(noisy.values, m.values)

    def test_noise_std_matches(self, rng):
        config = SyntheticConfig(
            genes_range=(30, 30), samples_range=(60, 60), gene_pool=60, seed=4
        )
        m = generate_matrix(config, 0, rng)
        noisy = add_noise(m, 0.5, np.random.default_rng(8))
        delta = noisy.values - m.values
        assert float(np.std(delta)) == pytest.approx(0.5, rel=0.1)

    def test_zero_std_returns_same_object(self, rng):
        config = SyntheticConfig(
            genes_range=(8, 10), samples_range=(6, 8), gene_pool=30, seed=4
        )
        m = generate_matrix(config, 0, rng)
        assert add_noise(m, 0.0) is m

    def test_negative_std_rejected(self, rng):
        config = SyntheticConfig(
            genes_range=(8, 10), samples_range=(6, 8), gene_pool=30, seed=4
        )
        m = generate_matrix(config, 0, rng)
        with pytest.raises(ValidationError):
            add_noise(m, -0.1)

    def test_database_noise(self, small_database):
        noisy = add_noise_to_database(small_database, 0.3, rng=1)
        assert len(noisy) == len(small_database)
        assert noisy.source_ids == small_database.source_ids
