"""Unit tests for the ``imgrn`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_roc_defaults(self):
        args = build_parser().parse_args(["roc"])
        assert args.experiment == "roc"
        assert args.organism == "ecoli"

    def test_unknown_organism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["roc", "--organism", "yeti"])

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["gamma", "--n-matrices", "30", "--queries", "4"]
        )
        assert args.n_matrices == 30
        assert args.queries == 4

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for name in (
            "roc",
            "pcorr",
            "inference-time",
            "vs-baseline",
            "gamma",
            "alpha",
            "pivots",
            "query-size",
            "matrix-size",
            "database-size",
            "index-build",
        ):
            assert parser.parse_args([name]).experiment == name


class TestMain:
    def test_roc_prints_summary(self, capsys):
        code = main(["roc", "--genes", "24", "--mc-samples", "40", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "imgrn" in out
        assert "AUC" in out

    def test_inference_time_prints_table(self, capsys):
        code = main(["inference-time", "--sizes", "16", "20", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig5b_inference_time" in out
        assert "imgrn_seconds" in out

    def test_gamma_sweep_small(self, capsys):
        code = main(["gamma", "--n-matrices", "8", "--queries", "1", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7_gamma" in out


class TestReport:
    def test_report_collates_outputs(self, tmp_path, capsys):
        (tmp_path / "fig_demo.txt").write_text("== demo ==\nrow 1\n")
        code = main(["report", "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "### fig_demo" in out
        assert "row 1" in out

    def test_report_missing_dir(self, tmp_path, capsys):
        code = main(["report", "--out-dir", str(tmp_path / "nope")])
        assert code == 1
        assert "no bench outputs" in capsys.readouterr().out
