"""Unit tests for the pivot-based 2d+1-dimensional embedding."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.embedding import embed_matrix, interleave_coordinates
from repro.core.standardize import standardize_matrix
from repro.errors import DimensionMismatchError, ValidationError


@pytest.fixture()
def matrix(rng):
    return rng.normal(size=(12, 8))


class TestInterleave:
    def test_layout(self):
        point = interleave_coordinates(
            np.array([1.0, 2.0]), np.array([3.0, 4.0]), gene_id=9
        )
        np.testing.assert_allclose(point, [1.0, 3.0, 2.0, 4.0, 9.0])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            interleave_coordinates(np.ones(2), np.ones(3), 0)


class TestEmbedMatrix:
    def test_coordinate_shapes(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), source_id=5, num_pivots=3, rng=1)
        assert emb.x.shape == (8, 3)
        assert emb.y.shape == (8, 3)
        assert emb.num_genes == 8
        assert emb.num_pivots == 3
        assert emb.source_id == 5

    def test_x_is_distance_to_pivot_columns(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=2, rng=1)
        std = standardize_matrix(matrix)
        for s in range(8):
            for r, piv in enumerate(emb.pivot_indices):
                expected = float(np.linalg.norm(std[:, s] - std[:, piv]))
                assert emb.x[s, r] == pytest.approx(expected, abs=1e-9)

    def test_pivot_self_distance_zero(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=2, rng=1)
        for r, piv in enumerate(emb.pivot_indices):
            assert emb.x[piv, r] == pytest.approx(0.0, abs=1e-9)

    def test_jensen_y_is_sqrt_2l(self, matrix):
        emb = embed_matrix(
            matrix, list(range(8)), 0, num_pivots=2, expectation_mode="jensen", rng=1
        )
        np.testing.assert_allclose(emb.y, math.sqrt(2 * 12), atol=1e-9)

    def test_mc_y_below_jensen(self, matrix):
        jensen = embed_matrix(
            matrix, list(range(8)), 0, num_pivots=2, expectation_mode="jensen", rng=1
        )
        mc = embed_matrix(
            matrix,
            list(range(8)),
            0,
            num_pivots=2,
            expectation_mode="mc",
            expectation_samples=200,
            rng=1,
        )
        # Jensen dominates in expectation; individual MC estimates may
        # exceed it by sampling noise, so compare the means.
        assert float(np.mean(mc.y)) <= float(np.mean(jensen.y)) + 0.02

    def test_points_interleaving_and_gene_dim(self, matrix):
        gene_ids = [10, 20, 30, 40, 50, 60, 70, 80]
        emb = embed_matrix(matrix, gene_ids, 0, num_pivots=2, rng=1)
        pts = emb.points()
        assert pts.shape == (8, 5)
        np.testing.assert_allclose(pts[:, 0], emb.x[:, 0])
        np.testing.assert_allclose(pts[:, 1], emb.y[:, 0])
        np.testing.assert_allclose(pts[:, 2], emb.x[:, 1])
        np.testing.assert_allclose(pts[:, 3], emb.y[:, 1])
        np.testing.assert_allclose(pts[:, 4], gene_ids)

    def test_point_matches_points_row(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=2, rng=1)
        np.testing.assert_allclose(emb.point(3), emb.points()[3])

    def test_point_index_out_of_range(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=2, rng=1)
        with pytest.raises(ValidationError):
            emb.point(8)

    def test_random_pivot_strategy(self, matrix):
        emb = embed_matrix(
            matrix, list(range(8)), 0, num_pivots=2, pivot_strategy="random", rng=1
        )
        assert len(emb.pivot_indices) == 2

    def test_invalid_modes(self, matrix):
        with pytest.raises(ValidationError):
            embed_matrix(matrix, list(range(8)), 0, 2, expectation_mode="exact")
        with pytest.raises(ValidationError):
            embed_matrix(matrix, list(range(8)), 0, 2, pivot_strategy="greedy")

    def test_gene_id_count_mismatch(self, matrix):
        with pytest.raises(DimensionMismatchError):
            embed_matrix(matrix, list(range(7)), 0, 2)

    def test_coordinates_read_only(self, matrix):
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=2, rng=1)
        with pytest.raises(ValueError):
            emb.x[0, 0] = 1.0

    def test_triangle_inequality_lower_bound_property(self, matrix):
        """|x_s[r] - x_t[r]| <= dist(X_s, X_t): the relaxation the pivot
        pruning region relies on."""
        emb = embed_matrix(matrix, list(range(8)), 0, num_pivots=3, rng=1)
        std = standardize_matrix(matrix)
        for s in range(8):
            for t in range(8):
                true_dist = float(np.linalg.norm(std[:, s] - std[:, t]))
                lower = float(np.max(np.abs(emb.x[s] - emb.x[t])))
                assert lower <= true_dist + 1e-9
